"""Tests for the chunked map-reduce engine (repro.parallel).

Every parallel entry point must be observationally equivalent to its
serial twin, and must fall back to the serial path — without touching a
worker pool — whenever splitting is impossible.
"""

import io
import pathlib
import random

import pytest

from repro import gallery, parallel
from repro.codegen import compile_generated
from repro.core.io import (
    FixedWidthRecords,
    NewlineRecords,
    NoRecords,
    Source,
    plan_chunks,
    plan_file_chunks,
)
from repro.tools.accum import accumulate_records
from repro.tools.datagen import clf_workload, sirius_workload

JOBS = 2  # keep pools small; correctness, not throughput, is under test


# -- chunk planning ------------------------------------------------------------


class TestPlanChunks:
    def plan(self, data: bytes, n, disc=None, min_chunk=8, start=0):
        return plan_chunks(io.BytesIO(data), len(data), disc or NewlineRecords(),
                           n, min_chunk=min_chunk, start=start)

    def test_tiles_input_exactly(self):
        data = b"".join(b"rec%04d\n" % i for i in range(64))
        chunks = self.plan(data, 4)
        assert chunks[0][0] == 0 and chunks[-1][1] == len(data)
        for (_, e1), (s2, _) in zip(chunks, chunks[1:]):
            assert e1 == s2

    def test_cuts_land_on_record_boundaries(self):
        data = b"".join(b"rec%04d\n" % i for i in range(64))
        chunks = self.plan(data, 4)
        assert len(chunks) > 1
        for s, _ in chunks[1:]:
            assert data[s - 1:s] == b"\n"

    def test_small_input_declines(self):
        assert self.plan(b"a\nb\n", 4, min_chunk=1 << 16) is None

    def test_single_job_declines(self):
        data = b"x\n" * 100
        assert self.plan(data, 1) is None

    def test_unchunkable_discipline_declines(self):
        data = b"x" * 4096
        assert self.plan(data, 4, disc=NoRecords()) is None

    def test_one_giant_record_declines(self):
        # No interior newline: every cut aligns to EOF, <2 chunks remain.
        data = b"x" * 4096 + b"\n"
        assert self.plan(data, 4) is None

    def test_fixed_width_cuts_are_multiples(self):
        data = b"ABCDEFGH" * 64
        chunks = self.plan(data, 4, disc=FixedWidthRecords(8))
        for s, _ in chunks:
            assert s % 8 == 0

    def test_fixed_width_respects_origin_after_header(self):
        # 3-byte header, then 8-byte records: cuts must align to the
        # record grid (start + k*8), not to multiples of 8.
        header = b"HDR"
        data = header + b"ABCDEFGH" * 64
        chunks = self.plan(data, 4, disc=FixedWidthRecords(8), start=3)
        assert chunks[0][0] == 3
        for s, _ in chunks:
            assert (s - 3) % 8 == 0

    def test_start_after_header_line(self):
        data = b"header\n" + b"body\n" * 200
        chunks = self.plan(data, 4, start=7)
        assert chunks[0][0] == 7 and chunks[-1][1] == len(data)
        for s, _ in chunks[1:]:
            assert data[s - 1:s] == b"\n"

    def test_plan_file_chunks(self, tmp_path):
        path = tmp_path / "data.log"
        path.write_bytes(b"line\n" * 1000)
        chunks = plan_file_chunks(str(path), NewlineRecords(), 4, min_chunk=64)
        assert chunks[0][0] == 0 and chunks[-1][1] == 5000
        for s, _ in chunks[1:]:
            assert s % 5 == 0  # every record is 5 bytes

    def test_chunked_records_equal_whole(self):
        rng = random.Random(7)
        data = b"".join(bytes(rng.choices(b"abc", k=rng.randrange(12))) + b"\n"
                        for _ in range(300))
        whole = self._records(Source.from_bytes(data, NewlineRecords()))
        for n in (2, 3, 5, 8):
            chunks = self.plan(data, n, min_chunk=4)
            if chunks is None:
                continue
            split = []
            for s, e in chunks:
                split += self._records(Source(data[s:e], start=s,
                                              discipline=NewlineRecords()))
            assert split == whole

    @staticmethod
    def _records(src):
        out = []
        with src:
            while src.begin_record():
                out.append(src.record_bytes())
                src.end_record()
        return out


# -- the parallel entry points -------------------------------------------------


@pytest.fixture(scope="module")
def clf_data() -> bytes:
    return clf_workload(1500, random.Random(20050612))


@pytest.fixture(scope="module")
def clf_file(clf_data, tmp_path_factory) -> pathlib.Path:
    path = tmp_path_factory.mktemp("parallel") / "clf.log"
    path.write_bytes(clf_data)
    return path


@pytest.fixture(scope="module", params=["interp", "generated"])
def clf_desc(request):
    if request.param == "interp":
        return gallery.load_clf()
    return compile_generated(gallery.CLF)


def small_chunks(monkeypatch):
    """Shrink the minimum chunk so 1500-record test inputs split."""
    monkeypatch.setattr(parallel, "plan_chunks",
                        lambda h, size, d, n, start=0:
                        plan_chunks(h, size, d, n, min_chunk=1 << 12,
                                    start=start))


class TestParallelEquivalence:
    @pytest.fixture(autouse=True)
    def _small_chunks(self, monkeypatch):
        small_chunks(monkeypatch)

    def test_count(self, clf_desc, clf_data, clf_file):
        serial = clf_desc.count_records(clf_data)
        assert parallel.parallel_count(clf_desc, clf_data, jobs=JOBS) == serial
        assert parallel.parallel_count(clf_desc, clf_file, jobs=JOBS) == serial
        assert clf_desc.count_records_parallel(clf_data, jobs=JOBS) == serial

    def test_records_order_and_parity(self, clf_desc, clf_data):
        serial = list(clf_desc.records(clf_data, "entry_t"))
        par = list(parallel.parallel_records(clf_desc, clf_data, "entry_t",
                                             jobs=JOBS))
        assert len(par) == len(serial)
        for (s_rep, s_pd), (p_rep, p_pd) in zip(serial, par):
            assert p_pd.nerr == s_pd.nerr
            assert p_pd.loc == s_pd.loc  # absolute offsets AND record index
            assert p_rep.client.tag == s_rep.client.tag
            assert str(p_rep.remoteID) == str(s_rep.remoteID)

    def test_records_from_file(self, clf_desc, clf_data, clf_file):
        serial = [pd.nerr for _, pd in clf_desc.records(clf_data, "entry_t")]
        par = [pd.nerr for _, pd in
               clf_desc.records_parallel(clf_file, "entry_t", jobs=JOBS)]
        assert par == serial

    def test_tally(self, clf_desc, clf_data, clf_file):
        serial = parallel.tally_records(clf_desc, clf_data, "entry_t")
        for data in (clf_data, clf_file):
            par = parallel.parallel_tally(clf_desc, data, "entry_t", jobs=JOBS)
            assert par.records == serial.records
            assert par.bad_records == serial.bad_records
            assert par.total_errors == serial.total_errors
            assert par.by_code == serial.by_code
            assert par.first_error_code == serial.first_error_code
            assert par.first_error_loc == serial.first_error_loc

    def test_accumulate(self, clf_desc, clf_data, clf_file):
        serial_acc, _hdr, n = accumulate_records(clf_desc, clf_data, "entry_t")
        for data in (clf_data, clf_file):
            acc, header, tally = parallel.parallel_accumulate(
                clf_desc, data, "entry_t", jobs=JOBS)
            assert header is None
            assert tally.records == n
            assert acc.full_report() == serial_acc.full_report()

    def test_accumulate_with_header(self):
        desc = gallery.load_sirius()
        data = sirius_workload(1500, random.Random(20050612))
        serial_acc, serial_hdr, n = accumulate_records(
            desc, data, "entry_t", header_type="summary_header_t")
        acc, header, tally = parallel.parallel_accumulate(
            desc, data, "entry_t", jobs=JOBS, header_type="summary_header_t")
        assert header is not None
        assert header.full_report() == serial_hdr.full_report()
        assert tally.records == n
        assert acc.full_report() == serial_acc.full_report()


# -- serial fallback -----------------------------------------------------------


class TestSerialFallback:
    @pytest.fixture(autouse=True)
    def _no_pool(self, monkeypatch):
        # The fallback path must never touch a worker pool.
        monkeypatch.setattr(parallel, "_pool", self._boom)
        monkeypatch.setattr(parallel, "plan_chunks",
                            lambda h, size, d, n, start=0:
                            plan_chunks(h, size, d, n, min_chunk=1 << 12,
                                        start=start))

    @staticmethod
    def _boom(jobs):  # pragma: no cover - only reached on failure
        raise AssertionError("serial fallback reached the worker pool")

    def test_jobs_one_is_serial(self, clf_desc, clf_data):
        assert parallel._plan_windows(clf_desc, clf_data, 1) is None
        n = parallel.parallel_count(clf_desc, clf_data, jobs=1)
        assert n == clf_desc.count_records(clf_data)

    def test_unchunkable_discipline_is_serial(self):
        desc = gallery.load_netflow()  # NoRecords: one packed binary blob
        assert not desc.discipline.chunkable
        data = bytes(20) * 400
        assert parallel._plan_windows(desc, data, JOBS) is None

    def test_small_input_is_serial(self, clf_desc):
        data = clf_workload(5, random.Random(1))
        assert parallel._plan_windows(clf_desc, data, JOBS) is None
        tally = parallel.parallel_tally(clf_desc, data, "entry_t", jobs=JOBS)
        assert tally.records == 5

    def test_open_source_is_serial(self, clf_desc, clf_data):
        src = clf_desc.open(clf_data)
        assert parallel._plan_windows(clf_desc, src, JOBS) is None
        assert parallel.parallel_count(clf_desc, src, jobs=JOBS) == \
            clf_desc.count_records(clf_data)

    def test_specless_description_is_serial(self, clf_desc, clf_data,
                                            monkeypatch):
        monkeypatch.setattr(parallel, "_spec_for", lambda d: None)
        pairs = list(parallel.parallel_records(clf_desc, clf_data, "entry_t",
                                               jobs=JOBS))
        assert len(pairs) == clf_desc.count_records(clf_data)


# -- spec plumbing -------------------------------------------------------------


class TestDescSpec:
    def test_interp_spec_roundtrip(self):
        desc = gallery.load_clf()
        spec = parallel._spec_for(desc)
        assert spec.engine == "interp"
        rebuilt = parallel._materialise(spec)
        assert rebuilt.count_records(b"") == 0

    def test_generated_spec(self):
        desc = compile_generated(gallery.CLF)
        spec = parallel._spec_for(desc)
        assert spec.engine == "generated"

    def test_spec_is_picklable(self):
        import pickle
        spec = parallel._spec_for(gallery.load_sirius())
        assert pickle.loads(pickle.dumps(spec)).key() == spec.key()

    def test_seeding_avoids_recompilation(self):
        desc = gallery.load_clf()
        spec = parallel._spec_for(desc)
        parallel._COMPILED.pop(spec.key(), None)
        parallel._seed(desc, spec)
        assert parallel._materialise(spec) is desc
