"""Tests for user-defined base types loaded from files (paper Section 6)."""

import random

import pytest

from repro import ErrCode, PadsError, compile_description
from repro.core.basetypes import is_base_type, load_base_type_file

SEVERITY_SPEC = '''
class Severity(BaseType):
    """A syslog-style severity keyword."""
    kind = "string"
    LEVELS = [b"DEBUG", b"INFO", b"WARN", b"ERROR", b"FATAL"]

    def parse(self, src, sem_check):
        for level in self.LEVELS:
            if src.match_bytes(level):
                return level.decode(), ErrCode.NO_ERR
        return self.default(), ErrCode.INVALID_ENUM

    def write(self, value):
        return str(value).encode()

    def default(self):
        return "INFO"

    def generate(self, rng):
        return rng.choice(self.LEVELS).decode()


class Hexword(BaseType):
    """A fixed-width lowercase hex word."""
    kind = "int"

    def __init__(self, nchars):
        self.nchars = int(nchars)
        self.lo = 0
        self.hi = 16 ** self.nchars - 1

    def parse(self, src, sem_check):
        raw = src.take(self.nchars)
        if len(raw) < self.nchars:
            return self.default(), ErrCode.WIDTH_NOT_AVAILABLE
        try:
            return int(raw, 16), ErrCode.NO_ERR
        except ValueError:
            return self.default(), ErrCode.INVALID_INT

    def write(self, value):
        return format(int(value), "0{}x".format(self.nchars)).encode()

    def default(self):
        return 0

    def generate(self, rng):
        return rng.randint(0, self.hi)


register_base_type("Pseverity", Severity)
register_base_type("Phexword", Hexword, min_args=1)
'''


@pytest.fixture(scope="module")
def spec_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("basetypes") / "severity.py"
    path.write_text(SEVERITY_SPEC)
    return str(path)


class TestLoading:
    def test_types_registered(self, spec_file):
        load_base_type_file(spec_file)
        assert is_base_type("Pseverity")
        assert is_base_type("Phexword")

    def test_idempotent(self, spec_file):
        load_base_type_file(spec_file)
        load_base_type_file(spec_file)  # no error

    def test_bad_file_reports_path(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("register_base_type(")
        with pytest.raises(PadsError, match="broken.py"):
            load_base_type_file(str(bad))


class TestUseInDescriptions:
    DESC = """
        Precord Pstruct log_t {
              Pseverity level;
        ' '; Phexword(:8:) trace_id;
        ' '; Pstring_any message;
        };
    """

    @pytest.fixture(scope="class")
    def d(self, spec_file):
        return compile_description(self.DESC, base_type_files=[spec_file])

    def test_parse(self, d):
        rep, pd = d.parse(b"ERROR deadbeef disk on fire\n", "log_t")
        assert pd.nerr == 0
        assert rep.level == "ERROR"
        assert rep.trace_id == 0xDEADBEEF
        assert rep.message == "disk on fire"

    def test_errors_reported(self, d):
        _, pd = d.parse(b"WHISPER deadbeef x\n", "log_t")
        assert pd.nerr >= 1

    def test_roundtrip(self, d):
        data = b"WARN 0000cafe something odd\n"
        rep, _ = d.parse(data, "log_t")
        assert d.write(rep, "log_t") == data

    def test_generation(self, d, rng):
        for _ in range(10):
            rep = d.generate("log_t", rng)
            data = d.write(rep, "log_t")
            back, pd = d.parse(data, "log_t")
            assert pd.nerr == 0 and back == rep

    def test_typechecker_knows_arity(self, spec_file):
        from repro.dsl.typecheck import TypeErrorReport
        with pytest.raises(TypeErrorReport, match="1 parameter"):
            compile_description("Pstruct p { Phexword x; };",
                                base_type_files=[spec_file])

    def test_accumulator_over_user_type(self, d, rng):
        from repro.tools.accum import Accumulator
        acc = Accumulator(d.node("log_t"))
        for _ in range(30):
            rep = d.generate("log_t", rng)
            acc.add(rep, None)
        levels = acc.field("level").self_acc.values
        assert set(levels) <= {"DEBUG", "INFO", "WARN", "ERROR", "FATAL"}

    def test_generated_module_uses_user_type(self, spec_file):
        from repro.codegen import compile_generated
        gen = compile_generated(self.DESC)  # types already registered
        rep, pd = gen.parse(b"FATAL 01234567 boom\n", "log_t")
        assert pd.nerr == 0 and rep.level == "FATAL"


class TestCli:
    def test_base_types_flag(self, spec_file, tmp_path, capsys):
        from repro.tools.padsc import main
        desc = tmp_path / "log.pads"
        desc.write_text(TestUseInDescriptions.DESC)
        data = tmp_path / "log.txt"
        data.write_text("INFO 00000001 hello\nERROR 00000002 bad\n")
        assert main(["accum", str(desc), str(data), "--record", "log_t",
                     "--field", "level", "--base-types", spec_file]) == 0
        out = capsys.readouterr().out
        assert "good: 2 bad: 0" in out
