"""Robustness suite: resource guards, fault injection, self-healing.

Three layers under test:

* **Resource guards** — :class:`ParseLimits` budgets surface as
  LIMIT_EXCEEDED-family pd errors with identical semantics in the
  interpreter and the generated engine, never as crashes.
* **Fault injection** — :mod:`repro.faults` corrupts conforming data and
  asserts the never-crash invariants; the hypothesis sweep extends that
  to arbitrary byte strings, seeded from ``tests/corpus/``.
* **Self-healing parallel engine** — injected worker crashes, clean
  worker exceptions and wedged workers all recover to byte-identical
  results, with every recovery action counted.
"""

import os
import pathlib
import random
import time

import pytest

from repro import gallery, observe, parallel
from repro.codegen import compile_generated
from repro.core.api import compile_description
from repro.core.errors import ErrCode, Pstate
from repro.core.io import FixedWidthRecords
from repro.core.limits import ParseLimits
from repro.faults import (
    FaultReport,
    boundary_truncations,
    fuzz_description,
    fuzz_gallery,
    mutation_battery,
)
from repro.tools.datagen import call_detail_workload, clf_workload, sirius_workload
from repro.tools.padsc import main

from .test_codegen import pd_summary

JOBS = 3
CORPUS = pathlib.Path(__file__).parent / "corpus"


def _engine_pairs():
    """(name, interp, gen, data, record_type) per gallery case."""
    cd_disc = FixedWidthRecords(gallery.CALL_DETAIL_WIDTH)
    return [
        ("clf", gallery.load_clf(), compile_generated(gallery.CLF),
         clf_workload(200, random.Random(5)), "entry_t"),
        ("sirius", gallery.load_sirius(), compile_generated(gallery.SIRIUS),
         sirius_workload(60, random.Random(6)).split(b"\n", 1)[1], "entry_t"),
        ("call_detail", gallery.load_call_detail(),
         compile_generated(gallery.CALL_DETAIL, ambient="binary",
                           discipline=cd_disc),
         call_detail_workload(100, random.Random(7)), "call_t"),
    ]


@pytest.fixture(scope="module")
def engine_pairs():
    return _engine_pairs()


def _four_ways(interp, gen, data, rtype):
    """(engine label, path label, reps, pd summaries) for serial and
    parallel runs of both engines."""
    out = []
    for engine_label, engine in (("interp", interp), ("gen", gen)):
        for path_label, parallel_ in (("serial", False), ("parallel", True)):
            if parallel_:
                pairs = list(engine.records_parallel(data, rtype, jobs=JOBS))
            else:
                pairs = list(engine.records(data, rtype))
            out.append((engine_label, path_label,
                        [r for r, _ in pairs],
                        [pd_summary(p) for _, p in pairs]))
    return out


class TestEdgeInputsPinned:
    """Truncated-final-record and empty-input behaviour is pinned
    identical across serial, parallel, interpreter, and generated runs."""

    def test_truncated_final_record_identical_four_ways(self, engine_pairs):
        for name, interp, gen, data, rtype in engine_pairs:
            truncated = data[:-9]  # cut mid-way through the last record
            runs = _four_ways(interp, gen, truncated, rtype)
            _, _, base_reps, base_pds = runs[0]
            for engine_label, path_label, reps, pds in runs[1:]:
                assert reps == base_reps, (name, engine_label, path_label)
                assert pds == base_pds, (name, engine_label, path_label)
            # The cut record surfaces as a pd error, not silence: the
            # last parsed record carries errors.
            assert base_pds, name
            assert base_pds[-1][1] > 0, name  # nerr of the final record

    def test_truncation_chunked_parallel_matches_serial(self):
        # Big enough to really chunk (>= 3 * 64KiB windows).
        interp = gallery.load_clf()
        data = clf_workload(4000, random.Random(8))[:-11]
        assert parallel._plan_windows(interp, data, JOBS) is not None
        serial = [(r, pd_summary(p)) for r, p in interp.records(data, "entry_t")]
        par = [(r, pd_summary(p))
               for r, p in interp.records_parallel(data, "entry_t", jobs=JOBS)]
        assert par == serial

    def test_empty_input_identical_four_ways(self, engine_pairs):
        for name, interp, gen, _data, rtype in engine_pairs:
            for engine_label, path_label, reps, pds in _four_ways(
                    interp, gen, b"", rtype):
                assert reps == [], (name, engine_label, path_label)
                assert pds == [], (name, engine_label, path_label)
            assert interp.count_records(b"") == 0
            assert gen.count_records(b"") == 0


class TestResourceLimits:
    """Limit hits are pd errors with the LIMIT pstate bit, identical
    across engines."""

    def test_spec_parsing_and_validation(self):
        limits = ParseLimits.parse("record-bytes=4096,deadline=1.5,errors=10")
        assert limits.max_record_bytes == 4096
        assert limits.deadline == 1.5
        assert limits.max_errors == 10
        from repro.core.errors import PadsError
        with pytest.raises(PadsError):
            ParseLimits.parse("bogus=1")
        with pytest.raises(PadsError):
            ParseLimits.parse("record-bytes=0")
        with pytest.raises(PadsError):
            ParseLimits(deadline=-1.0)

    def test_limit_codes_are_not_syntactic(self):
        # Limit errors must never trigger resync-style recovery.
        assert not ErrCode.RECORD_LIMIT.is_syntactic()
        assert not ErrCode.DEADLINE_EXCEEDED.is_syntactic()
        assert ErrCode.RECORD_LIMIT.is_limit()
        assert not ErrCode.MISSING_LITERAL.is_limit()

    def _both(self, limits, data, rtype="entry_t"):
        interp = compile_description(gallery.CLF, limits=limits)
        gen = compile_generated(gallery.CLF, limits=limits)
        i = [(r, pd_summary(p)) for r, p in interp.records(data, rtype)]
        g = [(r, pd_summary(p)) for r, p in gen.records(data, rtype)]
        assert i == g
        return i

    def test_record_bytes_limit(self):
        data = clf_workload(20, random.Random(9))
        out = self._both(ParseLimits(max_record_bytes=8), data)
        assert len(out) == 20  # every record still yields a pd
        for _rep, (pstate, nerr, code, *_rest) in out:
            assert code == int(ErrCode.RECORD_LIMIT)
            assert pstate & int(Pstate.LIMIT)
            assert pstate & int(Pstate.PANIC)
            assert nerr > 0

    def test_depth_limit(self):
        data = clf_workload(10, random.Random(10))
        out = self._both(ParseLimits(max_depth=1), data)
        assert all(s[2] == int(ErrCode.NEST_LIMIT) for _r, s in out)

    def test_array_limit(self):
        sirius = sirius_workload(30, random.Random(11)).split(b"\n", 1)[1]
        interp = compile_description(gallery.SIRIUS,
                                     limits=ParseLimits(max_array_elems=1))
        gen = compile_generated(gallery.SIRIUS,
                                limits=ParseLimits(max_array_elems=1))
        i = [pd_summary(p) for _r, p in interp.records(sirius, "entry_t")]
        g = [pd_summary(p) for _r, p in gen.records(sirius, "entry_t")]
        assert i == g
        flat = repr(i)
        assert str(int(ErrCode.ARRAY_LIMIT)) in flat

    def test_error_budget_aborts_run(self):
        data = b"garbage line one\ngarbage line two\ngarbage three\n" * 10
        unlimited = self._both(None, data)
        capped = self._both(ParseLimits(max_errors=2), data)
        assert len(capped) < len(unlimited)
        # The aborting record reports the budget code and the source is
        # driven to EOF — nothing after it.
        assert capped[-1][1][2] == int(ErrCode.ERROR_BUDGET_EXCEEDED)

    def test_expired_deadline_reported_not_raised(self):
        data = clf_workload(5, random.Random(12))
        out = self._both(ParseLimits(deadline=1e-9), data)
        assert out, "deadline abort must still yield a pd"
        assert out[0][1][2] == int(ErrCode.DEADLINE_EXCEEDED)

    def test_limit_counters_in_stats(self):
        interp = compile_description(gallery.CLF,
                                     limits=ParseLimits(max_record_bytes=8))
        data = clf_workload(7, random.Random(13))
        with observe.observed() as obs:
            list(interp.records(data, "entry_t"))
        stats = obs.stats(deterministic=True)
        assert stats["limits"]["record_bytes"] == 7
        assert stats["recovery"] == {"chunk_retry": 0, "chunk_timeout": 0,
                                     "pool_rebuild": 0, "degraded": 0}

    def test_max_errors_forces_serial_path(self):
        interp = compile_description(gallery.CLF,
                                     limits=ParseLimits(max_errors=5))
        data = clf_workload(4000, random.Random(14))
        assert parallel._plan_windows(interp, data, JOBS) is None


@pytest.mark.timing
class TestSelfHealingParallel:
    """Injected worker faults recover to byte-identical results, with
    recovery actions visible in the metrics registry.

    Marked ``timing``: these tests stall and kill real worker processes
    against wall-clock caps, so CI runs them serially, isolated from
    suite-load jitter.
    """

    @pytest.fixture()
    def big_clf(self):
        interp = gallery.load_clf()
        data = clf_workload(4000, random.Random(15))
        assert parallel._plan_windows(interp, data, JOBS) is not None
        serial = [(r, pd_summary(p))
                  for r, p in interp.records(data, "entry_t")]
        return interp, data, serial

    @pytest.fixture(autouse=True)
    def _clean_pools(self):
        # Fault hooks must be armed before workers fork; cleared after.
        parallel.shutdown()
        yield
        parallel._WORKER_FAULT = None
        parallel._WEDGE_TIMEOUT = None
        parallel.shutdown()

    def _run_with_fault(self, interp, data, fault):
        parallel._WORKER_FAULT = fault
        with observe.observed() as obs:
            out = [(r, pd_summary(p)) for r, p in
                   interp.records_parallel(data, "entry_t", jobs=JOBS)]
        parallel._WORKER_FAULT = None
        return out, obs.stats(deterministic=True)["recovery"]

    def test_crashed_workers_recover_and_degrade(self, big_clf):
        interp, data, serial = big_clf
        parent = os.getpid()

        def crash_all(task):
            if os.getpid() != parent:
                os._exit(13)

        out, recovery = self._run_with_fault(interp, data, crash_all)
        assert out == serial
        assert recovery["chunk_retry"] >= 1
        assert recovery["pool_rebuild"] == 1
        assert recovery["degraded"] == 1

    def test_single_bad_chunk_retries_in_process(self, big_clf):
        interp, data, serial = big_clf
        parent = os.getpid()

        def flaky_first_window(task):
            window = task[1]
            if os.getpid() != parent and window[2] == 0:
                raise RuntimeError("injected chunk failure")

        out, recovery = self._run_with_fault(interp, data, flaky_first_window)
        assert out == serial
        assert recovery["chunk_retry"] == 1
        assert recovery["pool_rebuild"] == 0
        assert recovery["degraded"] == 0

    def test_wedged_worker_times_out_and_recovers(self, big_clf, tmp_path):
        # Wedge detection gets its own clock (parallel._WEDGE_TIMEOUT)
        # rather than a ParseLimits deadline: a deadline tight enough to
        # detect the wedge quickly is also a real per-chunk data budget
        # that healthy workers can trip under full-suite load, silently
        # truncating their chunks (the flake this test used to have).
        interp, data, serial = big_clf
        parent = os.getpid()
        release = tmp_path / "release"

        def stall_first_window(task):
            window = task[1]
            if os.getpid() != parent and window[2] == 0:
                # Wedge, don't crash: hold the chunk hostage until the
                # parent finishes recovering, so the stall outlives the
                # wedge timeout however loaded the machine is.
                give_up = time.monotonic() + 60.0
                while not release.exists() and time.monotonic() < give_up:
                    time.sleep(0.05)

        parallel._WEDGE_TIMEOUT = 5.0
        try:
            out, recovery = self._run_with_fault(interp, data,
                                                 stall_first_window)
        finally:
            parallel._WEDGE_TIMEOUT = None
            release.touch()  # let the abandoned worker exit
        assert out == serial
        assert recovery["chunk_timeout"] == 1
        assert recovery["chunk_retry"] >= 1

    def test_parallel_count_survives_crashes(self, big_clf):
        interp, data, _serial = big_clf
        expected = interp.count_records(data)
        parent = os.getpid()

        def crash_all(task):
            if os.getpid() != parent:
                os._exit(13)

        parallel._WORKER_FAULT = crash_all
        assert interp.count_records_parallel(data, jobs=JOBS) == expected


class TestFaultHarness:
    def test_fuzz_clf_never_crashes(self):
        report = fuzz_description(gallery.CLF, "entry_t", name="clf",
                                  n_records=6, seed=2)
        assert report.ok, report.summary()
        assert report.cases > 0
        assert report.errors > 0  # corruption must actually bite

    def test_fuzz_gallery_subset(self):
        report = fuzz_gallery(n_records=4, seed=3,
                              only=["calldetail", "netflow"])
        assert report.ok, report.summary()
        assert report.cases > 0

    def test_battery_aims_at_plan_structure(self):
        interp = gallery.load_clf()
        labels = [label for label, _fn in mutation_battery(interp, "entry_t")]
        assert any(label.startswith("drop-literal") for label in labels)
        assert any(label.startswith("double-literal") for label in labels)

    def test_boundary_truncations_cover_literal_edges(self):
        record = b'a b [x] "y" 1 2\n'
        cuts = dict(boundary_truncations(record, [b"[", b"]", b'"']))
        assert "truncate@4" in cuts  # the '[' boundary
        assert all(record.startswith(data) for data in cuts.values())

    def test_report_merge_and_summary(self):
        a, b = FaultReport(cases=2, records=5, errors=1), FaultReport(cases=1)
        a.merge(b)
        assert (a.cases, a.records, a.errors) == (3, 5, 1)
        assert a.ok
        assert "3 runs" in a.summary()


class TestCorpusNeverCrashes:
    """Every seed in tests/corpus/ parses through every gallery engine
    without violating the never-crash invariants."""

    @pytest.mark.parametrize("seed_path", sorted(CORPUS.glob("*")),
                             ids=lambda p: p.name)
    def test_seed(self, seed_path):
        from repro.faults import GALLERY_TARGETS, _never_crash
        data = seed_path.read_bytes()
        for name, text, rtype, ambient, discipline in GALLERY_TARGETS:
            interp = compile_description(
                text, ambient=ambient, discipline=discipline,
                limits=ParseLimits(deadline=10.0, max_scan=4096))
            _count, _errors, violation = _never_crash(interp, data, rtype, 30.0)
            assert violation is None, (name, seed_path.name, violation)


class TestCLIRobustness:
    @pytest.fixture()
    def clf_file(self, tmp_path):
        path = tmp_path / "clf.pads"
        path.write_text(gallery.CLF)
        return str(path)

    def test_fuzz_subcommand(self, clf_file, capsys):
        assert main(["fuzz", clf_file, "--record", "entry_t", "-n", "3"]) == 0
        assert "0 failures" in capsys.readouterr().out

    def test_fuzz_gallery_flag(self, capsys):
        assert main(["fuzz", "--gallery", "--only", "calldetail",
                     "-n", "3"]) == 0
        assert "0 failures" in capsys.readouterr().out

    def test_fuzz_without_target_is_usage_error(self, capsys):
        assert main(["fuzz"]) == 2
        assert "padsc:" in capsys.readouterr().err

    def test_missing_data_file_one_line_exit_2(self, clf_file, capsys):
        assert main(["count", clf_file, "/nonexistent.data"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # one diagnostic line, no traceback
        assert "padsc:" in err

    def test_bad_limits_spec_exit_2(self, clf_file, tmp_path, capsys):
        data = tmp_path / "d.log"
        data.write_bytes(clf_workload(2, random.Random(1)))
        assert main(["count", clf_file, str(data),
                     "--limits", "frobnicate=1"]) == 2
        assert "padsc:" in capsys.readouterr().err

    def test_limits_flag_reaches_engine(self, clf_file, tmp_path, capsys):
        data = tmp_path / "d.log"
        data.write_bytes(clf_workload(3, random.Random(2)))
        assert main(["accum", clf_file, str(data), "--record", "entry_t",
                     "--limits", "record-bytes=8", "--stats=json"]) == 0
        import json
        stderr = capsys.readouterr().err
        doc = json.loads(stderr[stderr.index("{"):])
        assert doc["limits"]["record_bytes"] == 3
