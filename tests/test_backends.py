"""Tests for the codegen backend layer (``repro.codegen.backends``).

Covers the ``Compilable`` protocol and registry, plan-driven backend
selection, the AST backend's specialization passes (``dosem`` cloning,
branch constant folding, literal-probe merging and byte-compare
lowering), and the ``padsc compile --dump`` debugging path.
"""

import ast

import pytest

from repro import gallery
from repro.codegen import compile_generated
from repro.codegen.backends import (
    BACKENDS,
    AstBackend,
    Compilable,
    CompiledModule,
    SourceBackend,
    get_backend,
    select_backend,
)
from repro.tools.padsc import main

#: Fixed-width record with literal separators: exercises the slicing
#: fast path, so the AST backend folds its probes (``'|'`` at 3 merges
#: nothing, but ``'|' '#'`` at 7..8 fuses into one ``startswith``).
SLICED = """
Precord Pstruct row_t {
    Puint8_FW(:3:) a;
    '|';
    Puint8_FW(:3:) b;
    '|';
    '#';
    Puint8_FW(:2:) c : c > 0;
};
Psource Parray rows_t { row_t[]; };
"""

SLICED_DATA = b"123|456|#07\n999|888|#00\nxxx|yyy|#11\n"


class TestProtocolAndRegistry:
    def test_backends_satisfy_compilable(self):
        for name, backend in BACKENDS.items():
            assert isinstance(backend, Compilable), name
            assert backend.name == name

    def test_registry_contents(self):
        assert sorted(BACKENDS) == ["ast", "source"]
        assert isinstance(get_backend("source"), SourceBackend)
        assert isinstance(get_backend("ast"), AstBackend)

    def test_unknown_backend_is_an_error(self):
        with pytest.raises(ValueError, match="unknown codegen backend"):
            get_backend("llvm")
        with pytest.raises(ValueError, match="known: ast, source"):
            compile_generated(gallery.CLF, backend="llvm")

    def test_dump_requires_source_or_tree(self):
        broken = CompiledModule(module=None, backend="ast")
        with pytest.raises(ValueError, match="neither source nor AST"):
            broken.dump()


class TestSelection:
    def test_auto_picks_ast_for_fast_code(self):
        plan = compile_generated(SLICED, backend="source").plan
        backend, reason = select_backend(plan, "auto")
        assert backend.name == "ast"
        assert "row_t" in reason

    def test_reference_mode_stays_on_source(self):
        plan = compile_generated(SLICED, backend="source").plan
        backend, reason = select_backend(plan, "auto", fastpath=False)
        assert backend.name == "source"
        assert "reference mode" in reason

    def test_forced_choice_always_honored(self):
        plan = compile_generated(SLICED, backend="source").plan
        backend, reason = select_backend(plan, "source")
        assert backend.name == "source"
        assert "forced" in reason

    def test_codegen_verdict_follows_fastpath(self):
        gen = compile_generated(SLICED, backend="source")
        dp = gen.plan.decl("row_t")
        assert dp.verdict.eligible
        assert dp.codegen_verdict.eligible
        assert dp.codegen_verdict.reason.startswith("ast:")

    def test_description_without_fast_code_selects_source(self):
        # A runtime-parameterised width defeats the fast-path analysis,
        # so the plan steers codegen back to the source backend.
        desc = """
Precord Pstruct row_t {
  Puint8 n;
  ':';
  Pstring_FW(:n:) s;
};
Psource Parray rows_t { row_t[]; };
"""
        gen = compile_generated(desc)
        assert gen.backend == "source"
        dp = gen.plan.decl("row_t")
        assert not dp.codegen_verdict.eligible
        assert "source" in dp.codegen_verdict.reason


class TestAstSpecialization:
    @pytest.fixture(scope="class")
    def dump(self):
        return compile_generated(SLICED, backend="ast").dump()

    def test_dump_is_parseable_python(self, dump):
        assert dump.startswith("# ast backend")
        ast.parse(dump)  # the unparse debugging view must stay valid

    def test_dosem_clones(self, dump):
        assert "def _fp_row_t__sem(_line):" in dump
        assert "def _fp_row_t__nosem(_line):" in dump
        sem = dump[dump.index("def _fp_row_t__sem"):]
        sem = sem[:sem.index("\ndef ")]
        # dosem is constant-folded away inside the clones: no parameter,
        # no residual guard test.
        assert "dosem" not in sem
        nosem = dump[dump.index("def _fp_row_t__nosem"):]
        nosem = nosem[:nosem.index("\ndef ")]
        # ... and the __nosem clone dropped the constraint check entirely.
        assert "c > 0" not in nosem and " > 0" not in nosem

    def test_call_sites_branch_on_mask(self, dump):
        assert "if mask.bits & 4:" in dump
        assert "_fp_row_t__sem(" in dump
        assert "_fp_row_t__nosem(" in dump

    def test_probe_folding(self, dump):
        # Single-byte literal '|' at offset 3 lowers to a byte compare...
        assert "_line[3] != 124" in dump
        # ... and the adjacent '|' '#' literals at 7..8 merge into one
        # two-byte startswith probe.
        assert "_line.startswith(b'|#', 7)" in dump

    def test_batch_kernels_left_generic(self, dump):
        # Batch kernels keep their dosem parameter: only the record fast
        # functions are cloned.
        assert "def _bt_row_t(" in dump

    def test_specialized_module_parses_identically(self):
        src = compile_generated(SLICED, backend="source")
        spec = compile_generated(SLICED, backend="ast")
        a = list(src.records(SLICED_DATA, "row_t"))
        b = list(spec.records(SLICED_DATA, "row_t"))
        assert [r for r, _ in a] == [r for r, _ in b]
        assert [p.nerr for _, p in a] == [p.nerr for _, p in b]

    def test_py_source_property_serves_the_dump(self):
        spec = compile_generated(SLICED, backend="ast")
        assert spec.backend == "ast"
        assert spec.compiled.py_source is None
        assert "_fp_row_t" in spec.py_source   # lazy ast.unparse view


class TestCli:
    @pytest.fixture
    def sliced_file(self, tmp_path):
        path = tmp_path / "sliced.pads"
        path.write_text(SLICED)
        return str(path)

    def test_plan_reports_backend(self, sliced_file, capsys):
        assert main(["plan", sliced_file]) == 0
        out = capsys.readouterr().out
        assert "codegen: eligible: ast:" in out
        assert "backend (auto): ast" in out

    def test_compile_ast_without_dump_is_an_error(self, sliced_file,
                                                  tmp_path, capsys):
        out = str(tmp_path / "row.py")
        assert main(["compile", sliced_file, "--backend", "ast",
                     "-o", out]) == 2
        assert "--dump" in capsys.readouterr().err

    def test_compile_ast_dump_writes_unparse_view(self, sliced_file,
                                                  tmp_path, capsys):
        out = tmp_path / "row.py"
        assert main(["compile", sliced_file, "--backend", "ast", "--dump",
                     "-o", str(out)]) == 0
        assert "ast backend dump" in capsys.readouterr().out
        text = out.read_text()
        assert text.startswith("# ast backend")
        assert "_fp_row_t__nosem" in text

    def test_run_stats_report_backend(self, sliced_file, tmp_path, capsys):
        data = tmp_path / "rows.dat"
        data.write_bytes(SLICED_DATA)
        assert main(["count", sliced_file, str(data),
                     "--backend", "ast", "--stats"]) == 0
        assert "backend: ast" in capsys.readouterr().err
