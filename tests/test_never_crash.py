"""Hypothesis sweep: both engines never raise on arbitrary byte strings.

The generative twin of the corpus test in ``test_robustness.py``: for
every gallery description, arbitrary binary inputs must produce parse
descriptors — never exceptions, hangs or broken pd accounting.  Runs
under a ParseLimits budget, as production parsers of untrusted data
should.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen import compile_generated
from repro.core.api import compile_description
from repro.core.limits import ParseLimits
from repro.faults import GALLERY_TARGETS, _never_crash

_LIMITS = ParseLimits(deadline=10.0, max_scan=4096)
_ENGINES: dict = {}


def _engines(name):
    """Both engines for a gallery target, compiled once per session."""
    if name not in _ENGINES:
        _name, text, rtype, ambient, discipline = next(
            t for t in GALLERY_TARGETS if t[0] == name)
        _ENGINES[name] = (
            rtype,
            compile_description(text, ambient=ambient, discipline=discipline,
                                limits=_LIMITS),
            compile_generated(text, ambient=ambient, discipline=discipline,
                              limits=_LIMITS),
        )
    return _ENGINES[name]


@pytest.mark.parametrize("name", [t[0] for t in GALLERY_TARGETS])
@settings(max_examples=25, deadline=None)
@given(data=st.binary(max_size=300))
def test_engines_never_raise_on_arbitrary_bytes(name, data):
    rtype, interp, gen = _engines(name)
    for label, engine in (("interp", interp), ("generated", gen)):
        _count, _errors, violation = _never_crash(engine, data, rtype, 30.0)
        assert violation is None, (name, label, violation, data)


@pytest.mark.parametrize("name", [t[0] for t in GALLERY_TARGETS])
@settings(max_examples=15, deadline=None)
@given(lines=st.lists(st.binary(max_size=40), max_size=8))
def test_engines_never_raise_on_line_shaped_noise(name, lines):
    # Newline-framed garbage exercises the record loop and resync paths
    # harder than flat binaries.
    data = b"\n".join(lines) + b"\n" if lines else b""
    rtype, interp, gen = _engines(name)
    for label, engine in (("interp", interp), ("generated", gen)):
        _count, _errors, violation = _never_crash(engine, data, rtype, 30.0)
        assert violation is None, (name, label, violation, data)
