"""Tests for the base-type library."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.core.basetypes import resolve_base_type, base_type_names, is_base_type
from repro.core.basetypes.base import UnknownBaseType, base_type_arity
from repro.core.errors import ErrCode
from repro.core.io import NewlineRecords, Source
from repro.core.values import DateVal


def parse(base, data, sem=True):
    src = Source.from_bytes(data)
    value, code = base.parse(src, sem)
    return value, code, src


class TestAsciiIntegers:
    def test_uint_parse(self):
        t = resolve_base_type("Puint32")
        value, code, src = parse(t, b"12345|rest")
        assert (value, code) == (12345, ErrCode.NO_ERR)
        assert src.peek(1) == b"|"

    def test_int_with_sign(self):
        t = resolve_base_type("Pint32")
        assert parse(t, b"-42")[0:2] == (-42, ErrCode.NO_ERR)
        assert parse(t, b"+42")[0:2] == (42, ErrCode.NO_ERR)

    def test_uint_rejects_sign(self):
        t = resolve_base_type("Puint32")
        value, code, src = parse(t, b"-42")
        assert code == ErrCode.INVALID_INT
        assert src.pos == 0

    def test_no_digits_is_error_and_no_movement(self):
        t = resolve_base_type("Puint8")
        value, code, src = parse(t, b"abc")
        assert code == ErrCode.INVALID_INT
        assert src.pos == 0

    def test_range_check_is_semantic(self):
        t = resolve_base_type("Puint8")
        value, code, src = parse(t, b"300", sem=True)
        assert code == ErrCode.RANGE_ERR
        assert value == 300  # value still reported
        value, code, src = parse(t, b"300", sem=False)
        assert code == ErrCode.NO_ERR  # masked off

    def test_signed_range(self):
        t = resolve_base_type("Pint8")
        assert parse(t, b"-128")[1] == ErrCode.NO_ERR
        assert parse(t, b"-129")[1] == ErrCode.RANGE_ERR

    def test_write_roundtrip(self):
        t = resolve_base_type("Pint32")
        assert t.write(-77) == b"-77"
        assert parse(t, t.write(-77))[0] == -77


class TestFixedWidthIntegers:
    def test_parse_exact_width(self):
        t = resolve_base_type("Puint16_FW", (3,))
        value, code, src = parse(t, b"20078")
        assert (value, code) == (200, ErrCode.NO_ERR)
        assert src.pos == 3

    def test_space_padding_accepted(self):
        t = resolve_base_type("Puint16_FW", (4,))
        assert parse(t, b"  42")[0:2] == (42, ErrCode.NO_ERR)

    def test_zero_padded_write(self):
        t = resolve_base_type("Puint16_FW", (3,))
        assert t.write(7) == b"007"

    def test_too_short_input(self):
        t = resolve_base_type("Puint16_FW", (5,))
        value, code, src = parse(t, b"42")
        assert code == ErrCode.WIDTH_NOT_AVAILABLE
        assert src.pos == 0

    def test_value_too_wide_to_write(self):
        t = resolve_base_type("Puint16_FW", (3,))
        with pytest.raises(ValueError):
            t.write(12345)

    def test_garbage_is_invalid(self):
        t = resolve_base_type("Puint16_FW", (3,))
        assert parse(t, b"a42")[1] == ErrCode.INVALID_INT


class TestBinaryIntegers:
    def test_little_endian_default(self):
        t = resolve_base_type("Pb_uint32")
        assert parse(t, (258).to_bytes(4, "little"))[0] == 258

    def test_big_endian_variant(self):
        t = resolve_base_type("Pb_uint32_be")
        assert parse(t, (258).to_bytes(4, "big"))[0] == 258

    def test_signed(self):
        t = resolve_base_type("Pb_int16")
        assert parse(t, (-5).to_bytes(2, "little", signed=True))[0] == -5

    def test_truncated_input(self):
        t = resolve_base_type("Pb_uint64")
        value, code, src = parse(t, b"abc")
        assert code == ErrCode.WIDTH_NOT_AVAILABLE
        assert src.pos == 0

    def test_ambient_binary_alias(self):
        t = resolve_base_type("Puint16", ambient="binary")
        assert parse(t, (99).to_bytes(2, "little"))[0] == 99

    @given(st.integers(0, 2**32 - 1))
    def test_roundtrip(self, n):
        t = resolve_base_type("Pb_uint32")
        assert parse(t, t.write(n))[0] == n


class TestEbcdicIntegers:
    def test_parse(self):
        t = resolve_base_type("Pe_uint32")
        assert parse(t, "1234".encode("cp037"))[0] == 1234

    def test_negative(self):
        t = resolve_base_type("Pe_int32")
        assert parse(t, "-56".encode("cp037"))[0] == -56

    def test_ambient_ebcdic_alias(self):
        t = resolve_base_type("Puint8", ambient="ebcdic")
        assert parse(t, "42".encode("cp037"))[0] == 42


class TestFloats:
    @pytest.mark.parametrize("text,expected", [
        (b"3.25", 3.25), (b"-1.5", -1.5), (b"42", 42.0),
        (b"1e3", 1000.0), (b"2.5E-2", 0.025),
    ])
    def test_ascii_float(self, text, expected):
        t = resolve_base_type("Pfloat")
        assert parse(t, text)[0] == pytest.approx(expected)

    def test_ascii_float_garbage(self):
        t = resolve_base_type("Pfloat")
        value, code, src = parse(t, b"abc")
        assert code == ErrCode.INVALID_FLOAT and src.pos == 0

    def test_trailing_dot_not_consumed(self):
        t = resolve_base_type("Pfloat")
        value, code, src = parse(t, b"3.xyz")
        assert value == 3.0
        assert src.peek(1) == b"."

    def test_binary_float_roundtrip(self):
        t = resolve_base_type("Pb_double")
        assert parse(t, t.write(3.141592653589793))[0] == 3.141592653589793


class TestStrings:
    def test_terminated_string(self):
        t = resolve_base_type("Pstring", (" ",))
        value, code, src = parse(t, b"hello world")
        assert (value, code) == ("hello", ErrCode.NO_ERR)
        assert src.peek(1) == b" "

    def test_missing_terminator_extends_to_end_of_scope(self):
        t = resolve_base_type("Pstring", ("|",))
        value, code, src = parse(t, b"no pipes here")
        assert (value, code) == ("no pipes here", ErrCode.NO_ERR)
        assert src.at_eof()

    def test_empty_string_ok(self):
        t = resolve_base_type("Pstring", ("|",))
        assert parse(t, b"|x")[0] == ""

    def test_write_rejects_embedded_terminator(self):
        t = resolve_base_type("Pstring", ("|",))
        with pytest.raises(ValueError):
            t.write("a|b")

    def test_fixed_width(self):
        t = resolve_base_type("Pstring_FW", (4,))
        assert parse(t, b"abcdef")[0] == "abcd"

    def test_regex_match(self):
        t = resolve_base_type("Pstring_ME", ("[A-Z]+",))
        value, code, src = parse(t, b"ABCdef")
        assert value == "ABC"
        assert src.pos == 3

    def test_regex_no_match(self):
        t = resolve_base_type("Pstring_ME", ("[A-Z]+",))
        assert parse(t, b"abc")[1] == ErrCode.REGEXP_NO_MATCH

    def test_regex_terminated(self):
        t = resolve_base_type("Pstring_SE", (r"\d",))
        value, code, src = parse(t, b"abc123")
        assert value == "abc"
        assert src.pos == 3

    def test_char(self):
        t = resolve_base_type("Pchar")
        assert parse(t, b"-x")[0] == "-"

    def test_ebcdic_string(self):
        t = resolve_base_type("Pstring", ("|",), ambient="ebcdic")
        data = "HELLO|".encode("cp037")
        assert parse(t, data)[0] == "HELLO"

    def test_string_any_stops_at_record_end(self):
        t = resolve_base_type("Pstring_any")
        src = Source.from_bytes(b"first line\nsecond\n", NewlineRecords())
        src.begin_record()
        value, code = t.parse(src, True)
        assert value == "first line"


class TestDates:
    def test_clf_date(self):
        t = resolve_base_type("Pdate", ("]",))
        value, code, src = parse(t, b"15/Oct/1997:18:46:51 -0700]")
        assert code == ErrCode.NO_ERR
        assert isinstance(value, DateVal)
        # 18:46:51 -0700 == 01:46:51 UTC the next day.
        assert value.strftime("%D:%T") == "10/16/97:01:46:51"
        assert src.peek(1) == b"]"

    def test_iso_date(self):
        t = resolve_base_type("Pdate", ("|",))
        value, code, _ = parse(t, b"2002-04-14|")
        assert value == DateVal.from_datetime(
            __import__("datetime").datetime(2002, 4, 14,
                                            tzinfo=__import__("datetime").timezone.utc))

    def test_bad_date(self):
        t = resolve_base_type("Pdate", ("]",))
        value, code, src = parse(t, b"not a date]")
        assert code == ErrCode.INVALID_DATE
        assert src.pos == 0

    def test_write_reproduces_raw_text(self):
        t = resolve_base_type("Pdate", ("]",))
        raw = b"15/Oct/1997:18:46:51 -0700"
        value, _, _ = parse(t, raw + b"]")
        assert t.write(value) == raw

    def test_dateval_comparisons(self):
        a, b = DateVal(100), DateVal(200)
        assert a < b and a <= b and b > a and a != b
        assert a < 150 and b >= 200

    def test_timestamp_type(self):
        t = resolve_base_type("Ptimestamp")
        value, code, _ = parse(t, b"1005022800|")
        assert value.epoch == 1005022800


class TestNetworkTypes:
    def test_ip(self):
        t = resolve_base_type("Pip")
        assert parse(t, b"135.207.23.32 ")[0] == "135.207.23.32"

    def test_ip_octet_range(self):
        t = resolve_base_type("Pip")
        assert parse(t, b"300.1.1.1")[1] == ErrCode.INVALID_IP

    def test_ip_rejects_hostname_continuation(self):
        t = resolve_base_type("Pip")
        value, code, src = parse(t, b"1.2.3.4.example.com")
        assert code == ErrCode.INVALID_IP
        assert src.pos == 0

    def test_hostname(self):
        t = resolve_base_type("Phostname")
        assert parse(t, b"www.research.att.com ")[0] == "www.research.att.com"

    def test_hostname_needs_a_letter(self):
        t = resolve_base_type("Phostname")
        assert parse(t, b"1.2.3.4 ")[1] == ErrCode.INVALID_HOSTNAME

    def test_zip(self):
        t = resolve_base_type("Pzip")
        assert parse(t, b"07988|")[0] == "07988"

    def test_zip_plus4(self):
        t = resolve_base_type("Pzip")
        assert parse(t, b"07988-1234|")[0] == "07988-1234"

    def test_zip_wrong_length(self):
        t = resolve_base_type("Pzip")
        assert parse(t, b"0798|")[1] == ErrCode.INVALID_ZIP

    def test_phone_number(self):
        t = resolve_base_type("Ppn")
        assert parse(t, b"9735551212|")[0] == 9735551212
        assert parse(t, b"0|")[0] == 0

    def test_phone_number_bad_length_is_semantic(self):
        t = resolve_base_type("Ppn")
        assert parse(t, b"12345|", sem=True)[1] == ErrCode.RANGE_ERR
        assert parse(t, b"12345|", sem=False)[1] == ErrCode.NO_ERR


class TestCobolTypes:
    def test_packed_decimal_positive(self):
        t = resolve_base_type("Pbcd_FW", (5,))
        # 12345 packed: digits 1 2 3 4 5 + sign C -> 3 bytes
        assert parse(t, bytes([0x12, 0x34, 0x5C]))[0] == 12345

    def test_packed_decimal_negative(self):
        t = resolve_base_type("Pbcd_FW", (3,))
        assert parse(t, bytes([0x01, 0x2D]))[0] == -12

    def test_packed_decimal_roundtrip(self):
        t = resolve_base_type("Pbcd_FW", (7,))
        for n in (0, 1, 999, -54321, 9999999):
            assert parse(t, t.write(n))[0] == n

    def test_packed_with_decimals(self):
        t = resolve_base_type("Pbcd_FW", (7, 2))
        assert parse(t, t.write(123.45))[0] == pytest.approx(123.45)

    def test_packed_bad_sign_nibble(self):
        t = resolve_base_type("Pbcd_FW", (3,))
        assert parse(t, bytes([0x01, 0x23]))[1] == ErrCode.INVALID_BCD

    def test_zoned_decimal(self):
        t = resolve_base_type("Pzoned_FW", (4,))
        # 1234 zoned: F1 F2 F3 C4
        assert parse(t, bytes([0xF1, 0xF2, 0xF3, 0xC4]))[0] == 1234

    def test_zoned_negative(self):
        t = resolve_base_type("Pzoned_FW", (3,))
        assert parse(t, bytes([0xF0, 0xF4, 0xD2]))[0] == -42

    def test_zoned_roundtrip(self):
        t = resolve_base_type("Pzoned_FW", (6,))
        for n in (0, 7, -123456, 999999):
            assert parse(t, t.write(n))[0] == n


class TestRegistry:
    def test_unknown_type(self):
        with pytest.raises(UnknownBaseType):
            resolve_base_type("Pnosuch")

    def test_is_base_type(self):
        assert is_base_type("Puint32")
        assert is_base_type("Pb_uint32")
        assert not is_base_type("entry_t")

    def test_arity(self):
        assert base_type_arity("Pstring") == (1, 1)
        assert base_type_arity("Puint32") == (0, 0)
        assert base_type_arity("Pdate") == (0, 1)

    def test_wrong_arity_rejected(self):
        from repro.core.errors import PadsError
        with pytest.raises(PadsError):
            resolve_base_type("Puint32", (3,))

    def test_names_listing(self):
        names = base_type_names()
        for expected in ("Puint8", "Pstring", "Pdate", "Pip", "Pbcd_FW"):
            assert expected in names


class TestGeneration:
    @pytest.mark.parametrize("name,args", [
        ("Puint8", ()), ("Pint32", ()), ("Puint16_FW", (3,)),
        ("Pb_uint32", ()), ("Pe_uint16", ()), ("Pstring", ("|",)),
        ("Pstring_FW", (5,)), ("Pip", ()), ("Phostname", ()),
        ("Pzip", ()), ("Pdate", ("]",)), ("Pbcd_FW", (5,)),
        ("Pzoned_FW", (4,)), ("Pfloat", ()),
    ])
    def test_generated_values_reparse(self, name, args):
        rng = random.Random(7)
        t = resolve_base_type(name, args)
        for _ in range(25):
            value = t.generate(rng)
            raw = t.write(value)
            back, code, _ = parse(t, raw)
            assert code == ErrCode.NO_ERR
            if isinstance(value, float):
                assert back == pytest.approx(value)
            else:
                assert back == value
