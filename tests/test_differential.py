"""Differential sweep hardening the observability layer.

Every gallery description runs through the interpreter and the generated
engine, serially and through ``records_parallel``, with observability off
and on.  All four paths must produce identical values, parse-descriptor
summaries and accumulator reports — enabling observation never changes
parse results, and both engines report the same (deterministic subset of)
metrics because the per-field error counters are derived from the pd
trees both engines already agree on.

The generated engine is additionally crossed over its codegen backends
(``backend='source'`` vs ``backend='ast'``): the backend choice is an
implementation detail, so both must stay byte-identical to the
interpreter on records, pd summaries, observe metrics and accumulator
reports.
"""

import random

import pytest

from repro import Mask, P_Check, P_CheckAndSet, P_Set, gallery, observe
from repro.codegen import compile_generated
from repro.core.api import compile_description
from repro.core.io import FixedWidthRecords
from repro.core.limits import ParseLimits
from repro.core.masks import MaskFlag
from repro.tools.accum import Accumulator
from repro.tools.datagen import (
    call_detail_workload,
    clf_workload,
    sirius_workload,
)

from .test_codegen import pd_summary

JOBS = 3


def _case_clf():
    return (gallery.load_clf(), compile_generated(gallery.CLF),
            clf_workload(300, random.Random(11)), "entry_t")


def _case_sirius():
    data = sirius_workload(90, random.Random(12)).split(b"\n", 1)[1]
    return (gallery.load_sirius(), compile_generated(gallery.SIRIUS),
            data, "entry_t")


def _case_call_detail():
    disc = FixedWidthRecords(gallery.CALL_DETAIL_WIDTH)
    return (gallery.load_call_detail(),
            compile_generated(gallery.CALL_DETAIL, ambient="binary",
                              discipline=disc),
            call_detail_workload(150, random.Random(13)), "call_t")


CASES = {
    "clf": _case_clf,
    "sirius": _case_sirius,
    "call_detail": _case_call_detail,
}


@pytest.fixture(scope="module")
def cases():
    return {name: build() for name, build in CASES.items()}


@pytest.fixture(scope="module")
def backend_cases(cases):
    """Each case's generated engine rebuilt with every forced backend."""
    return {
        name: {
            backend: compile_generated(
                interp.source_text, ambient=interp.ambient,
                discipline=interp.discipline, backend=backend)
            for backend in ("source", "ast")
        }
        for name, (interp, _gen, _data, _rtype) in cases.items()
    }


def run_records(description, data, record_type, *, parallel=False,
                metered=False):
    """One sweep configuration: returns (reps, pd summaries, stats)."""
    def consume():
        if parallel:
            out = list(description.records_parallel(data, record_type,
                                                    jobs=JOBS))
        else:
            out = list(description.records(data, record_type))
        return [r for r, _ in out], [pd_summary(p) for _, p in out]

    if not metered:
        return (*consume(), None)
    with observe.observed() as obs:
        reps, pds = consume()
    return reps, pds, obs.stats(deterministic=True)


@pytest.mark.parametrize("name", list(CASES))
class TestEnginesAgree:
    """Interpreter vs generated engine, with and without observation."""

    def test_serial_with_and_without_observe(self, cases, name):
        interp, gen, data, rtype = cases[name]
        base_reps, base_pds, _ = run_records(interp, data, rtype)
        for engine in (interp, gen):
            for metered in (False, True):
                reps, pds, _ = run_records(engine, data, rtype,
                                           metered=metered)
                assert reps == base_reps
                assert pds == base_pds

    def test_deterministic_stats_match_across_engines(self, cases, name):
        interp, gen, data, rtype = cases[name]
        _, _, s_interp = run_records(interp, data, rtype, metered=True)
        _, _, s_gen = run_records(gen, data, rtype, metered=True)
        assert s_interp == s_gen
        assert s_interp["records"]["total"] > 0

    def test_masked_parses_agree_under_observation(self, cases, name):
        interp, gen, data, rtype = cases[name]
        masks = [Mask(P_CheckAndSet), Mask(P_Check),
                 Mask(P_Set | MaskFlag.SYN_CHECK)]
        for mask in masks:
            pairs = []
            for engine in (interp, gen):
                with observe.observed() as obs:
                    out = list(engine.records(data, rtype, mask))
                pairs.append(([pd_summary(p) for _, p in out],
                              obs.stats(deterministic=True)))
            assert pairs[0] == pairs[1]


@pytest.mark.parametrize("name", list(CASES))
class TestSerialParallelAgree:
    """records vs records_parallel (falls back serially when the record
    discipline cannot be chunk-aligned — still must agree)."""

    def test_values_and_pds(self, cases, name):
        interp, gen, data, rtype = cases[name]
        for engine in (interp, gen):
            s_reps, s_pds, _ = run_records(engine, data, rtype)
            p_reps, p_pds, _ = run_records(engine, data, rtype,
                                           parallel=True)
            assert p_reps == s_reps
            assert p_pds == s_pds

    def test_deterministic_stats(self, cases, name):
        interp, _gen, data, rtype = cases[name]
        _, _, serial = run_records(interp, data, rtype, metered=True)
        _, _, par = run_records(interp, data, rtype, parallel=True,
                                metered=True)
        assert serial == par


@pytest.mark.parametrize("name", list(CASES))
class TestPlanDrivenAgainstReference:
    """Plan-driven engines (record fast fns + fused literal runs) vs
    reference mode (``fastpath=False``), which runs the pre-refactor
    general parse path only.

    The reference side runs serially (parallel workers recompile with
    default settings); the plan-driven side must match it both serially
    and through ``records_parallel``.
    """

    def _reference_pair(self, interp):
        ref_interp = compile_description(
            interp.source_text, ambient=interp.ambient,
            discipline=interp.discipline, fastpath=False)
        ref_gen = compile_generated(
            interp.source_text, ambient=interp.ambient,
            discipline=interp.discipline, fastpath=False)
        return ref_interp, ref_gen

    def test_fast_path_is_actually_active(self, cases, name):
        interp, gen, _data, rtype = cases[name]
        verdict = interp.plan.decl(rtype).verdict
        assert verdict.eligible, verdict
        assert f"_fp_{rtype}" in gen.py_source
        ref_i, ref_g = self._reference_pair(interp)
        # Reference mode disables materialisation, not analysis: the plan
        # still carries the verdict, but no fast fn reaches the engines.
        assert ref_i.plan.decl(rtype).verdict.eligible
        assert f"_fp_{rtype}" not in ref_g.py_source

    def test_reps_and_pds_match_reference(self, cases, name):
        interp, gen, data, rtype = cases[name]
        ref_i, ref_g = self._reference_pair(interp)
        ref_reps, ref_pds, _ = run_records(ref_i, data, rtype)
        g_reps, g_pds, _ = run_records(ref_g, data, rtype)
        assert (g_reps, g_pds) == (ref_reps, ref_pds)
        for engine in (interp, gen):
            for parallel in (False, True):
                reps, pds, _ = run_records(engine, data, rtype,
                                           parallel=parallel)
                assert reps == ref_reps
                assert pds == ref_pds

    def test_accumulator_reports_match_reference(self, cases, name):
        interp, gen, data, rtype = cases[name]
        ref_i, _ = self._reference_pair(interp)

        def report(engine):
            acc = Accumulator(engine.node(rtype), "<top>", 1000)
            for rep, pd in engine.records(data, rtype):
                acc.add(rep, pd)
            return acc.full_report()

        base = report(ref_i)
        assert report(interp) == base
        assert report(gen) == base
        acc, _hdr, _tally = interp.accumulate_parallel(data, rtype, jobs=JOBS)
        assert acc.full_report() == base


@pytest.mark.parametrize("name", list(CASES))
class TestLimitsAgree:
    """The whole sweep again with a ParseLimits budget attached: limits
    must not perturb clean parses, and limit *hits* must be identical
    across the interpreter, the generated engine, and the parallel path.
    """

    #: Generous enough that conforming records never trip, so results
    #: must match the unlimited run byte for byte.
    GENEROUS = ParseLimits(max_record_bytes=1 << 20, max_array_elems=10_000,
                           max_scan=4096, max_depth=64)
    #: Tight enough that every record trips (record cap below any real
    #: record) — both engines must report the identical RECORD_LIMIT pds.
    TIGHT = ParseLimits(max_record_bytes=4)

    @pytest.fixture()
    def limited(self, cases, name):
        """The case's engines with limits attached, restored afterwards
        (the ``cases`` fixture is module-scoped)."""
        interp, gen, data, rtype = cases[name]
        try:
            yield interp, gen, data, rtype
        finally:
            interp.limits = None
            gen.limits = None

    def test_generous_limits_change_nothing(self, cases, limited, name):
        interp, gen, data, rtype = limited
        base_reps, base_pds, base_stats = run_records(
            cases[name][0], data, rtype, metered=True)
        interp.limits = gen.limits = self.GENEROUS
        for engine in (interp, gen):
            for parallel in (False, True):
                reps, pds, stats = run_records(engine, data, rtype,
                                               parallel=parallel,
                                               metered=True)
                assert reps == base_reps
                assert pds == base_pds
                assert stats == base_stats

    def test_tight_limits_identical_across_engines(self, limited):
        interp, gen, data, rtype = limited
        interp.limits = gen.limits = self.TIGHT
        i_reps, i_pds, i_stats = run_records(interp, data, rtype,
                                             metered=True)
        assert i_stats["limits"]["record_bytes"] > 0
        # Every summary's top-level err_code is RECORD_LIMIT (501).
        assert all(summary[2] == 501 for summary in i_pds)
        for parallel in (False, True):
            g_reps, g_pds, g_stats = run_records(gen, data, rtype,
                                                 parallel=parallel,
                                                 metered=True)
            assert g_reps == i_reps
            assert g_pds == i_pds
            assert g_stats == i_stats


@pytest.mark.parametrize("name", list(CASES))
class TestBackendsAgree:
    """The source and AST codegen backends against the interpreter.

    All three gallery cases are fastpath-eligible, so ``backend='auto'``
    resolves to the AST backend and the forced variants pin both code
    paths explicitly; every backend must match the interpreter on reps,
    pd summaries and deterministic observe stats, serially and through
    ``records_parallel`` (whose workers rebuild with the same backend).
    """

    def test_backend_selection_is_plan_driven(self, cases, backend_cases,
                                              name):
        interp, gen, _data, rtype = cases[name]
        assert interp.plan.decl(rtype).codegen_verdict.eligible
        assert gen.backend == "ast"     # auto picked the specializer
        assert backend_cases[name]["source"].backend == "source"
        assert backend_cases[name]["ast"].backend == "ast"

    def test_records_and_stats_identical(self, cases, backend_cases, name):
        interp, _gen, data, rtype = cases[name]
        base_reps, base_pds, base_stats = run_records(interp, data, rtype,
                                                      metered=True)
        for backend, gen in backend_cases[name].items():
            for parallel in (False, True):
                reps, pds, stats = run_records(gen, data, rtype,
                                               parallel=parallel,
                                               metered=True)
                assert reps == base_reps, backend
                assert pds == base_pds, backend
                assert stats == base_stats, backend

    def test_masked_parses_identical(self, cases, backend_cases, name):
        interp, _gen, data, rtype = cases[name]
        masks = [Mask(P_CheckAndSet), Mask(P_Check),
                 Mask(P_Set | MaskFlag.SYN_CHECK)]
        for mask in masks:
            base = [pd_summary(p)
                    for _, p in interp.records(data, rtype, mask)]
            for backend, gen in backend_cases[name].items():
                got = [pd_summary(p) for _, p in gen.records(data, rtype,
                                                             mask)]
                assert got == base, (backend, mask)

    def test_accumulator_reports_identical(self, cases, backend_cases, name):
        interp, _gen, data, rtype = cases[name]

        def report(engine):
            acc = Accumulator(engine.node(rtype), "<top>", 1000)
            for rep, pd in engine.records(data, rtype):
                acc.add(rep, pd)
            return acc.full_report()

        base = report(interp)
        for backend, gen in backend_cases[name].items():
            assert report(gen) == base, backend


@pytest.mark.parametrize("name", ["clf", "sirius"])
class TestAccumulatorsAgree:
    """Accumulator reports across engines, paths and observation states."""

    def _serial_report(self, engine, data, rtype, metered):
        acc = Accumulator(engine.node(rtype), "<top>", 1000)
        if metered:
            with observe.observed():
                for rep, pd in engine.records(data, rtype):
                    acc.add(rep, pd)
        else:
            for rep, pd in engine.records(data, rtype):
                acc.add(rep, pd)
        return acc.full_report()

    def test_reports_identical_everywhere(self, cases, name):
        interp, gen, data, rtype = cases[name]
        base = self._serial_report(interp, data, rtype, metered=False)
        assert self._serial_report(interp, data, rtype, metered=True) == base
        assert self._serial_report(gen, data, rtype, metered=False) == base
        assert self._serial_report(gen, data, rtype, metered=True) == base
        for metered in (False, True):
            if metered:
                with observe.observed():
                    acc, _hdr, _tally = interp.accumulate_parallel(
                        data, rtype, jobs=JOBS)
            else:
                acc, _hdr, _tally = interp.accumulate_parallel(
                    data, rtype, jobs=JOBS)
            assert acc.full_report() == base
