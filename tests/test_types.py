"""Tests for the structured-type combinators (parse/write/verify semantics,
masks, error recovery)."""

import pytest

from repro import (
    ErrCode,
    Mask,
    P_Check,
    P_CheckAndSet,
    P_Ignore,
    P_Set,
    Pstate,
    compile_description,
)
from repro.core.masks import MaskFlag


def c(text, **kw):
    return compile_description(text, **kw)


class TestStruct:
    DESC = """
      Pstruct pair_t {
        Puint32 a; '|'; Puint32 b : b >= a;
      };
    """

    def test_clean_parse(self):
        d = c(self.DESC)
        rep, pd = d.parse(b"3|7")
        assert (rep.a, rep.b) == (3, 7)
        assert pd.nerr == 0 and pd.pstate == Pstate.OK

    def test_constraint_violation(self):
        d = c(self.DESC)
        rep, pd = d.parse(b"9|7")
        assert pd.nerr == 1
        assert pd.fields["b"].err_code == ErrCode.USER_CONSTRAINT_VIOLATION
        assert (rep.a, rep.b) == (9, 7)  # value still materialised

    def test_missing_literal_resync(self):
        d = c(self.DESC)
        rep, pd = d.parse(b"3xx|7")
        assert pd.nerr >= 1
        assert pd.err_code == ErrCode.MISSING_LITERAL
        assert rep.b == 7  # recovered at the literal and kept going

    def test_field_syntax_error_resyncs_at_next_literal(self):
        d = c(self.DESC)
        rep, pd = d.parse(b"zz|7")
        assert pd.fields["a"].err_code == ErrCode.INVALID_INT
        assert rep.b == 7
        assert pd.pstate & Pstate.PARTIAL

    def test_panic_when_no_resync_possible(self):
        d = c("Pstruct p { Puint32 a; Puint32 b; };")
        rep, pd = d.parse(b"zz")
        assert pd.pstate & Pstate.PANIC

    def test_earlier_fields_in_scope(self):
        d = c("""
          Pstruct p {
            Puint8 n; ':';
            Pstring_FW(:n:) s;
          };
        """)
        rep, pd = d.parse(b"4:abcdxyz")
        assert pd.nerr == 0
        assert rep.s == "abcd"

    def test_compute_field(self):
        d = c("""
          Pstruct p {
            Puint8 a; '|'; Puint8 b;
            Pcompute int total = a + b;
          };
        """)
        rep, pd = d.parse(b"3|4")
        assert rep.total == 7

    def test_struct_where(self):
        d = c("Pstruct p { Puint8 a; '|'; Puint8 b; } Pwhere { a + b == 10 };")
        _, pd = d.parse(b"4|6")
        assert pd.nerr == 0
        _, pd = d.parse(b"4|5")
        assert pd.err_code == ErrCode.WHERE_CLAUSE_VIOLATION

    def test_write_roundtrip(self):
        d = c(self.DESC)
        rep, _ = d.parse(b"3|7")
        assert d.write(rep) == b"3|7"

    def test_verify(self):
        d = c(self.DESC)
        rep, _ = d.parse(b"3|7")
        assert d.verify(rep)
        rep.b = 1
        assert not d.verify(rep)


class TestMasks:
    DESC = """
      Pstruct p {
        Puint8 small; '|'; Puint32 big : big > 100;
      };
    """

    def test_ignore_semantic_checks(self):
        d = c(self.DESC)
        _, pd = d.parse(b"300|5", Mask(P_Set | MaskFlag.SYN_CHECK))
        assert pd.nerr == 0  # range + constraint both masked off

    def test_check_without_set_still_reports(self):
        d = c(self.DESC)
        rep, pd = d.parse(b"300|5", Mask(P_Check))
        assert pd.nerr == 2

    def test_per_field_mask(self):
        d = c(self.DESC)
        mask = Mask(P_CheckAndSet).with_field("big", Mask(P_Set))
        _, pd = d.parse(b"20|5", mask)
        assert pd.nerr == 0
        _, pd = d.parse(b"300|5", mask)
        assert pd.nerr == 1  # only `small`'s range check remains

    def test_compound_level_controls_where(self):
        d = c("Pstruct p { Puint8 a; '|'; Puint8 b; } Pwhere { a < b };")
        mask = Mask(P_CheckAndSet)
        mask.compound_level = P_Set
        _, pd = d.parse(b"9|3", mask)
        assert pd.nerr == 0
        _, pd = d.parse(b"9|3", Mask(P_CheckAndSet))
        assert pd.nerr == 1


class TestUnion:
    DESC = """
      Punion u {
        Pchar dash : dash == '-';
        Puint32 num;
        Pstring(:' ':) word;
      };
      Pstruct holder { u v; ' '; Puint8 after; };
    """

    def test_branch_order(self):
        d = c(self.DESC)
        rep, pd = d.parse(b"- 7", "holder")
        assert rep.v.tag == "dash"
        rep, pd = d.parse(b"42 7", "holder")
        assert rep.v.tag == "num" and rep.v.value == 42
        rep, pd = d.parse(b"hi 7", "holder")
        assert rep.v.tag == "word" and rep.v.value == "hi"

    def test_backtracking_restores_cursor(self):
        d = c(self.DESC)
        rep, pd = d.parse(b"x 5", "holder")
        assert rep.v.tag == "word" and rep.v.value == "x"
        assert rep.after == 5 and pd.nerr == 0

    def test_constraint_guards_branch_selection(self):
        # 'x' parses as Pchar but fails the guard, so the union moves on.
        d = c(self.DESC)
        rep, _ = d.parse(b"x 5", "holder")
        assert rep.v.tag != "dash"

    def test_match_failure(self):
        d = c("Punion u { Puint32 n; Pip addr; };")
        rep, pd = d.parse(b"xyz")
        assert pd.err_code == ErrCode.UNION_MATCH_FAILURE
        assert pd.pstate & Pstate.PANIC

    def test_union_value_projection(self):
        d = c(self.DESC)
        rep, _ = d.parse(b"42 7", "holder")
        assert rep.v.num == 42
        with pytest.raises(AttributeError):
            _ = rep.v.word

    def test_write_roundtrip(self):
        d = c(self.DESC)
        for data in (b"- 7", b"42 7", b"hi 7"):
            rep, _ = d.parse(data, "holder")
            assert d.write(rep, "holder") == data


class TestSwitchedUnion:
    DESC = """
      Punion payload_t(:int which:) {
        Pswitch (which) {
          Pcase 0: Puint32 num;
          Pcase 1: Pstring(:'!':) text;
          Pdefault: Pchar other;
        }
      };
      Pstruct rec_t {
        Puint8 tag; ':';
        payload_t(:tag:) body;
      };
      Psource Pstruct top { rec_t r; };
    """

    def test_case_selection(self):
        d = c(self.DESC)
        rep, pd = d.parse(b"0:123", "rec_t")
        assert rep.body.tag == "num" and rep.body.value == 123
        rep, pd = d.parse(b"1:hello!", "rec_t")
        assert rep.body.tag == "text" and rep.body.value == "hello"
        rep, pd = d.parse(b"9:Z", "rec_t")
        assert rep.body.tag == "other" and rep.body.value == "Z"

    def test_errors_propagate(self):
        d = c(self.DESC)
        rep, pd = d.parse(b"0:xyz", "rec_t")
        assert pd.nerr >= 1

    def test_write(self):
        d = c(self.DESC)
        rep, _ = d.parse(b"1:hey!", "rec_t")
        assert d.write(rep, "rec_t") == b"1:hey"  # '!' is the string term, not part of data


class TestOpt:
    DESC = """
      Pstruct p {
        Popt Puint32 maybe; '|'; Puint8 always;
      };
    """

    def test_present(self):
        d = c(self.DESC)
        rep, pd = d.parse(b"42|7")
        assert rep.maybe == 42 and pd.nerr == 0

    def test_absent(self):
        d = c(self.DESC)
        rep, pd = d.parse(b"|7")
        assert rep.maybe is None and pd.nerr == 0

    def test_write_both(self):
        d = c(self.DESC)
        for data in (b"42|7", b"|7"):
            rep, _ = d.parse(data)
            assert d.write(rep) == data


class TestArray:
    def test_sep_term(self):
        d = c("Precord Parray a { Puint32[] : Psep(',') && Pterm(Peor); };")
        rep, pd = d.parse(b"1,2,3\n", "a")
        assert rep == [1, 2, 3] and pd.nerr == 0

    def test_empty_array(self):
        d = c("Precord Parray a { Puint32[] : Psep(',') && Pterm(Peor); };")
        rep, pd = d.parse(b"\n", "a")
        assert rep == [] and pd.nerr == 0

    def test_fixed_size(self):
        d = c("Parray a { Puint8[3] : Psep(','); };")
        rep, pd = d.parse(b"1,2,3,4,5")
        assert rep == [1, 2, 3] and pd.nerr == 0

    def test_too_few_elements(self):
        d = c("Precord Parray a { Puint32[4] : Psep(','); };")
        rep, pd = d.parse(b"1,2\n", "a")
        assert pd.err_code == ErrCode.ARRAY_SIZE_ERR

    def test_size_range(self):
        d = c("Parray a { Puint8[2..4] : Psep(','); };")
        rep, pd = d.parse(b"1,2,3,4,5,6")
        assert rep == [1, 2, 3, 4]

    def test_element_error_resync(self):
        d = c("Precord Parray a { Puint32[] : Psep(',') && Pterm(Peor); };")
        rep, pd = d.parse(b"1,x,3\n", "a")
        assert pd.neerr == 1
        assert pd.first_error == 1
        assert rep[0] == 1 and rep[2] == 3

    def test_last_predicate(self):
        d = c("Parray a { Puint8[] : Psep(',') && Plast(elts[length-1] == 0); };")
        rep, pd = d.parse(b"5,3,0,7,8")
        assert rep == [5, 3, 0]

    def test_ended_predicate(self):
        d = c("Parray a { Puint8[] : Psep(',') && Pended(length >= 2); };")
        rep, pd = d.parse(b"5,3,9,7")
        assert rep == [5, 3]

    def test_longest(self):
        d = c("""
          Parray nums_t { Puint8[] : Psep(',') && Plongest; };
          Pstruct p {
            nums_t nums;
            Pstring_any rest;
          };
          Psource Pstruct top { p v; };
        """)
        rep, pd = d.parse(b"1,2,3xyz", "p")
        assert rep.nums == [1, 2, 3]
        assert rep.rest == "xyz"

    def test_where_clause_sortedness(self):
        d = c("""
          Precord Parray a {
            Puint32[] : Psep(',') && Pterm(Peor);
          } Pwhere {
            Pforall (i Pin [0..length-2] : elts[i] <= elts[i+1])
          };
        """)
        _, pd = d.parse(b"1,2,3\n", "a")
        assert pd.nerr == 0
        _, pd = d.parse(b"3,1,2\n", "a")
        assert pd.err_code == ErrCode.WHERE_CLAUSE_VIOLATION

    def test_parameterised_size(self):
        d = c("""
          Parray body_t(:int n:) { Puint8[n] : Psep(','); };
          Pstruct p { Puint8 n; ':'; body_t(:n:) xs; };
        """)
        rep, pd = d.parse(b"3:7,8,9,10", "p")
        assert rep.xs == [7, 8, 9] and pd.nerr == 0

    def test_write_roundtrip(self):
        d = c("Precord Parray a { Puint32[] : Psep(',') && Pterm(Peor); };")
        rep, _ = d.parse(b"10,20,30\n", "a")
        assert d.write(rep, "a") == b"10,20,30\n"

    def test_element_at_a_time(self):
        d = c("Parray a { Puint32[] : Psep(','); };")
        seen = [v for v, pd in d.array_elements(b"1,2,3", "a")]
        assert seen == [1, 2, 3]


class TestEnum:
    DESC = 'Penum m { GET, PUT, POST, POSTER Pfrom("POSTER") };'

    def test_parse(self):
        d = c(self.DESC + "Pstruct p { m x; '!'; };")
        rep, pd = d.parse(b"PUT!", "p")
        assert rep.x == "PUT"
        assert int(rep.x) == 1

    def test_longest_match_wins(self):
        d = c(self.DESC + "Pstruct p { m x; '!'; };")
        rep, _ = d.parse(b"POSTER!", "p")
        assert rep.x == "POSTER"

    def test_no_match(self):
        d = c(self.DESC + "Pstruct p { m x; '!'; };")
        rep, pd = d.parse(b"NOPE!", "p")
        assert pd.fields["x"].err_code == ErrCode.INVALID_ENUM

    def test_enum_literals_usable_in_constraints(self):
        d = c(self.DESC + "Pstruct p { m x : x != PUT; '!'; };")
        _, pd = d.parse(b"GET!", "p")
        assert pd.nerr == 0
        _, pd = d.parse(b"PUT!", "p")
        assert pd.nerr == 1

    def test_write(self):
        d = c(self.DESC + "Pstruct p { m x; '!'; };")
        rep, _ = d.parse(b"POST!", "p")
        assert d.write(rep, "p") == b"POST!"


class TestTypedef:
    DESC = ("Ptypedef Puint16_FW(:3:) response_t : "
            "response_t x => { 100 <= x && x < 600 };")

    def test_constraint(self):
        d = c(self.DESC)
        _, pd = d.parse(b"200")
        assert pd.nerr == 0
        _, pd = d.parse(b"042")
        assert pd.err_code == ErrCode.TYPEDEF_CONSTRAINT_VIOLATION
        _, pd = d.parse(b"999")
        assert pd.err_code == ErrCode.TYPEDEF_CONSTRAINT_VIOLATION

    def test_masked_off(self):
        d = c(self.DESC)
        _, pd = d.parse(b"042", mask=Mask(P_Set | MaskFlag.SYN_CHECK))
        assert pd.nerr == 0

    def test_plain_alias(self):
        d = c("Ptypedef Puint32 id_t; Pstruct p { id_t x; };")
        rep, pd = d.parse(b"77", "p")
        assert rep.x == 77


class TestRecords:
    def test_records_iterator(self):
        d = c("Precord Pstruct line_t { Puint32 n; };")
        out = [(rep.n, pd.nerr) for rep, pd in d.records(b"1\n2\n3\n", "line_t")]
        assert out == [(1, 0), (2, 0), (3, 0)]

    def test_bad_record_does_not_derail_later_ones(self):
        d = c("Precord Pstruct line_t { Puint32 n; };")
        out = list(d.records(b"1\nxx\n3\n", "line_t"))
        assert [pd.nerr for _, pd in out] == [0, 1, 0]
        assert out[2][0].n == 3

    def test_extra_data_at_eor(self):
        d = c("Precord Pstruct line_t { Puint32 n; };")
        out = list(d.records(b"1 trailing\n", "line_t"))
        assert out[0][1].err_code == ErrCode.EXTRA_DATA_AT_EOR

    def test_records_equivalent_to_whole_source(self):
        text = """
          Precord Pstruct line_t { Puint32 n; };
          Psource Parray all_t { line_t[]; };
        """
        d = c(text)
        data = b"5\n6\n7\n"
        whole, pd = d.parse(data)
        one_at_a_time = [rep for rep, _ in d.records(data, "line_t")]
        assert [r.n for r in whole] == [r.n for r in one_at_a_time]
