"""Tests for the description pretty-printer (AST -> PADS source).

The key property: re-parsing pretty-printed output yields a semantically
identical description (same parses over the same data).
"""

import pytest

from repro import compile_description, gallery
from repro.dsl.parser import parse_description
from repro.dsl.pprint import pp_description, pp_expr

from .test_codegen import pd_summary


def roundtrip(text: str) -> str:
    return pp_description(parse_description(text))


class TestExpressions:
    def exp(self, text):
        desc = parse_description(f"Pstruct p {{ Puint8 x : {text}; }};")
        return desc.decls[0].items[0].constraint

    @pytest.mark.parametrize("text", [
        "1 + 2 * 3",
        "(1 + 2) * 3",
        "100 <= x && x < 600",
        "a.b[2].c == x",
        "chk(x, 3)",
        "!(x == 1)",
        "x > 1 ? 1 : 0",
        "Pforall (i Pin [0..length-2] : elts[i] <= elts[i+1])",
    ])
    def test_expr_roundtrip_preserves_semantics(self, text):
        first = self.exp(text)
        printed = pp_expr(first)
        second = self.exp(printed)
        # Printing again must be a fixpoint.
        assert pp_expr(second) == printed

    def test_precedence_parenthesised_correctly(self):
        expr = self.exp("(1 + 2) * 3")
        assert pp_expr(expr) == "(1 + 2) * 3"
        expr = self.exp("1 + 2 * 3")
        assert pp_expr(expr) == "1 + 2 * 3"


class TestDescriptions:
    @pytest.mark.parametrize("name,text,ambient", [
        ("clf", gallery.CLF, "ascii"),
        ("sirius", gallery.SIRIUS, "ascii"),
        ("calldetail", gallery.CALL_DETAIL, "binary"),
        ("netflow", gallery.NETFLOW, "binary"),
    ])
    def test_gallery_roundtrip_is_fixpoint(self, name, text, ambient):
        once = roundtrip(text)
        twice = roundtrip(once)
        assert once == twice

    def test_clf_roundtrip_parses_identically(self):
        printed = pp_description(parse_description(gallery.CLF))
        original = compile_description(gallery.CLF)
        reparsed = compile_description(printed)
        for data in (gallery.CLF_SAMPLE,
                     gallery.CLF_SAMPLE.replace(" 200 30", " 200 -"),
                     gallery.CLF_SAMPLE.replace("GET", "LINK")):
            ri, pi = original.parse(data)
            rg, pg = reparsed.parse(data)
            assert pd_summary(pi) == pd_summary(pg)
            assert ri == rg

    def test_sirius_roundtrip_parses_identically(self):
        printed = pp_description(parse_description(gallery.SIRIUS))
        original = compile_description(gallery.SIRIUS)
        reparsed = compile_description(printed)
        ri, pi = original.parse(gallery.SIRIUS_SAMPLE)
        rg, pg = reparsed.parse(gallery.SIRIUS_SAMPLE)
        assert pd_summary(pi) == pd_summary(pg)
        assert ri == rg

    def test_escapes_survive(self):
        text = r"""Pstruct p { '\n'; "a\"b"; Pstring(:'\t':) s; };"""
        printed = roundtrip(text)
        d1 = parse_description(text).decls[0]
        d2 = parse_description(printed).decls[0]
        assert d1.items[0].literal.value == d2.items[0].literal.value == "\n"
        assert d1.items[1].literal.value == d2.items[1].literal.value == 'a"b'

    def test_switched_union(self):
        text = """
          Punion u(:int t:) {
            Pswitch (t) {
              Pcase 0: Puint32 num;
              Pdefault: Pchar other;
            }
          };
        """
        printed = roundtrip(text)
        assert "Pswitch (t)" in printed
        assert roundtrip(printed) == printed

    def test_functions(self):
        printed = roundtrip("""
          int f(int a, int b) {
            int acc = 0;
            for (int i = a; i < b; i += 1) acc += i;
            if (acc > 10) return acc; else return 0;
          };
        """)
        assert roundtrip(printed) == printed

    def test_annotations_preserved(self):
        printed = roundtrip("Psource Precord Pstruct p { Puint8 x; };")
        d = parse_description(printed).decls[0]
        assert d.is_source and d.is_record
