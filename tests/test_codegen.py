"""Tests for the code generator.

The core property: generated parsers are observationally identical to the
interpreted combinators — same reps, same parse-descriptor summaries, same
write-back bytes — over clean and corrupted inputs.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import FixedWidthRecords, Mask, NoRecords, P_Check, P_CheckAndSet, P_Set
from repro import compile_description, gallery
from repro.codegen import compile_generated, generate_source
from repro.core.masks import MaskFlag
from repro.tools.datagen import clf_workload, sirius_workload


def pd_summary(pd):
    """Structural fingerprint of a pd tree (order-insensitive on fields)."""
    return (
        int(pd.pstate), pd.nerr, int(pd.err_code),
        pd.tag, pd.neerr, pd.first_error,
        tuple(sorted((k, pd_summary(v)) for k, v in (pd._fields or {}).items())),
        tuple(pd_summary(e) for e in (pd._elts or [])),
        pd_summary(pd.branch) if pd.branch is not None else None,
    )


@pytest.fixture(scope="module")
def clf_gen():
    return compile_generated(gallery.CLF)


@pytest.fixture(scope="module")
def sirius_gen():
    return compile_generated(gallery.SIRIUS)


class TestGeneratedCLF:
    def test_sample(self, clf_gen):
        rep, pd = clf_gen.parse(gallery.CLF_SAMPLE)
        assert pd.nerr == 0
        assert len(rep) == 2
        assert rep[0].client.tag == "ip"

    def test_roundtrip(self, clf_gen):
        rep, _ = clf_gen.parse(gallery.CLF_SAMPLE)
        assert clf_gen.write(rep) == gallery.CLF_SAMPLE.encode()

    def test_matches_interpreter_on_clean_and_dirty_data(self, clf, clf_gen):
        rng = random.Random(77)
        data = clf_workload(300, rng)
        for (ri, pi), (rg, pg) in zip(clf.records(data, "entry_t"),
                                      clf_gen.records(data, "entry_t")):
            assert pd_summary(pi) == pd_summary(pg)
            assert ri == rg

    def test_constraint_inlined(self, clf_gen):
        bad = gallery.CLF_SAMPLE.replace('"GET /tk/p.txt HTTP/1.0"',
                                         '"LINK /tk/p.txt HTTP/1.0"')
        _, pd = clf_gen.parse(bad)
        assert pd.nerr == 1


class TestGeneratedSirius:
    def test_sample(self, sirius_gen):
        rep, pd = sirius_gen.parse(gallery.SIRIUS_SAMPLE)
        assert pd.nerr == 0
        assert rep.es[0].header.ramp.tag == "genRamp"

    def test_roundtrip_and_verify(self, sirius_gen):
        rep, _ = sirius_gen.parse(gallery.SIRIUS_SAMPLE)
        assert sirius_gen.write(rep) == gallery.SIRIUS_SAMPLE.encode()
        assert sirius_gen.verify(rep)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_interpreter_on_workload(self, sirius, sirius_gen, seed):
        data = sirius_workload(150, random.Random(seed)).split(b"\n", 1)[1]
        interp = list(sirius.records(data, "entry_t"))
        gen = list(sirius_gen.records(data, "entry_t"))
        assert len(interp) == len(gen)
        for (ri, pi), (rg, pg) in zip(interp, gen):
            assert pd_summary(pi) == pd_summary(pg)
            assert ri == rg

    def test_mask_behaviour_matches(self, sirius, sirius_gen):
        bad = gallery.SIRIUS_SAMPLE.replace(
            "LOC_CRTE|1001476800|LOC_OS_10|1001649601",
            "LOC_CRTE|1001649601|LOC_OS_10|1001476800")
        for mask in (Mask(P_CheckAndSet), Mask(P_Check),
                     Mask(P_Set | MaskFlag.SYN_CHECK)):
            _, pi = sirius.parse(bad, mask=mask)
            _, pg = sirius_gen.parse(bad, mask=mask)
            assert pd_summary(pi) == pd_summary(pg)


class TestGeneratedBinary:
    def test_call_detail(self, call_detail, rng):
        gen = compile_generated(gallery.CALL_DETAIL, ambient="binary",
                                discipline=FixedWidthRecords(24))
        reps = [call_detail.generate("call_t", rng) for _ in range(10)]
        data = call_detail.write(reps, "calls_t")
        got, pd = gen.parse(data, "calls_t")
        assert pd.nerr == 0 and got == reps
        assert gen.write(got, "calls_t") == data

    def test_netflow_parameterised_types(self, netflow, rng):
        gen = compile_generated(gallery.NETFLOW, ambient="binary",
                                discipline=NoRecords())
        pkt = netflow.generate("nf_packet_t", rng)
        data = netflow.write(pkt, "nf_packet_t")
        got, pd = gen.parse(data, "nf_packet_t")
        assert pd.nerr == 0
        assert len(got.flows) == pkt.hdr.count

    def test_netflow_corruption_matches_interpreter(self, netflow, rng):
        gen = compile_generated(gallery.NETFLOW, ambient="binary",
                                discipline=NoRecords())
        pkt = netflow.generate("nf_packet_t", rng)
        data = bytearray(netflow.write(pkt, "nf_packet_t"))
        for corrupt_at in (0, 2, 10, len(data) // 2):
            bad = bytes(data[:corrupt_at]) + b"\xff" + bytes(data[corrupt_at + 1:])
            _, pi = netflow.parse(bad, "nf_packet_t")
            _, pg = gen.parse(bad, "nf_packet_t")
            assert pd_summary(pi) == pd_summary(pg)


class TestGeneratedModuleSurface:
    """Figure 6: the generated library exposes the full tool surface."""

    FUNCTIONS = ["parse", "read", "write", "write2io", "verify", "m_init",
                 "fmt2io", "write_xml_2io", "acc_init", "acc_add",
                 "acc_report", "node_new", "node_kthChild", "default"]

    def test_api_surface(self, clf_gen):
        module = clf_gen.module
        for tname in ("entry_t", "request_t", "client_t", "clt_t"):
            for fn in self.FUNCTIONS:
                assert hasattr(module, f"{tname}_{fn}"), f"{tname}_{fn} missing"

    def test_write2io(self, clf_gen):
        import io
        rep, _ = clf_gen.parse(gallery.CLF_SAMPLE)
        buf = io.BytesIO()
        n = clf_gen.module.clt_t_write2io(buf, rep)
        assert buf.getvalue() == gallery.CLF_SAMPLE.encode()
        assert n == len(gallery.CLF_SAMPLE)

    def test_fmt2io(self, clf_gen):
        import io
        rep, _ = clf_gen.parse(gallery.CLF_SAMPLE)
        buf = io.BytesIO()
        clf_gen.module.entry_t_fmt2io(buf, rep[0], delims=("|",),
                                      date_format="%D:%T")
        assert buf.getvalue().decode() == gallery.CLF_FORMATTED.splitlines()[0]

    def test_acc_functions(self, clf_gen):
        module = clf_gen.module
        acc = module.entry_t_acc_init()
        for rep, pd in clf_gen.records(gallery.CLF_SAMPLE, "entry_t"):
            module.entry_t_acc_add(acc, pd, rep)
        report = module.entry_t_acc_report(acc)
        assert "good: 2 bad: 0" in report

    def test_node_functions(self, clf_gen):
        module = clf_gen.module
        rep, pd = clf_gen.parse(gallery.CLF_SAMPLE)
        node = module.clt_t_node_new(rep, pd)
        first = module.clt_t_node_kthChild(node, 0)
        assert first is not None
        assert first.kth_child_named("response").value() == 200

    def test_enum_constants_exported(self, clf_gen):
        assert clf_gen.module.E_GET == "GET"
        assert int(clf_gen.module.E_POST) == 2

    def test_user_functions_compiled(self, clf_gen):
        module = clf_gen.module
        from repro.core.values import Rec
        v10 = Rec(major=1, minor=0)
        assert module.fn_chkVersion(v10, module.E_GET) is True
        assert module.fn_chkVersion(v10, module.E_LINK) is False

    def test_expansion_ratio(self):
        """Paper Section 4: the 68-line Sirius description expands to
        thousands of generated lines."""
        desc_lines = len([l for l in gallery.SIRIUS.splitlines()
                          if l.strip() and not l.strip().startswith("/-")])
        gen_lines = len(generate_source(gallery.SIRIUS).splitlines())
        assert gen_lines / desc_lines > 10


# ---------------------------------------------------------------------------
# Property: generated == interpreted on random data (clean and corrupted)
# ---------------------------------------------------------------------------

PROP_DESC = """
    Penum tag_t { AA, BB, CC };
    Punion val_t {
        Pchar dash : dash == '-';
        Puint16 num;
        Pstring(:';':) word;
    };
    Parray nums_t {
        Puint8[] : Psep(',') && Pterm(';');
    } Pwhere { Pforall (i Pin [0..length-2] : elts[i] <= elts[i+1]) };
    Precord Pstruct row_t {
        tag_t tag; '|';
        val_t value; ';';
        nums_t nums; ';';
        Popt Pzip zip; '|';
        Puint32 total : total >= 10;
    };
"""


@pytest.fixture(scope="module")
def prop_pair():
    return (compile_description(PROP_DESC), compile_generated(PROP_DESC))


@settings(max_examples=120, deadline=None)
@given(st.binary(min_size=0, max_size=60).filter(lambda b: b"\n" not in b))
def test_generated_equals_interpreted_on_random_bytes(prop_pair, payload):
    interp, gen = prop_pair
    data = payload + b"\n"
    ri, pi = interp.parse(data, "row_t")
    rg, pg = gen.parse(data, "row_t")
    assert pd_summary(pi) == pd_summary(pg)
    assert ri == rg


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 2**32 - 1), st.data())
def test_generated_equals_interpreted_on_mutated_rows(prop_pair, seed, data):
    interp, gen = prop_pair
    rng = random.Random(seed)
    rep = interp.generate("row_t", rng)
    raw = bytearray(interp.write(rep, "row_t"))
    # Mutate a couple of bytes (avoiding the record terminator).
    for _ in range(data.draw(st.integers(0, 3))):
        if len(raw) > 1:
            idx = data.draw(st.integers(0, len(raw) - 2))
            raw[idx] = data.draw(st.integers(33, 126))
    blob = bytes(raw)
    ri, pi = interp.parse(blob, "row_t")
    rg, pg = gen.parse(blob, "row_t")
    assert pd_summary(pi) == pd_summary(pg)
    assert ri == rg
