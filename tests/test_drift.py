"""Tests for accumulator profile drift detection (paper §5.2, Altair)."""

import random

import pytest

from repro import compile_description, gallery
from repro.tools.accum import Accumulator
from repro.tools.datagen import clf_workload, sirius_workload
from repro.tools.drift import compare, profile_and_compare

DESC = """
    Penum status_t { OK, RETRY, FAIL };
    Precord Pstruct row_t {
        status_t status; '|';
        Puint16 latency; '|';
        Pstring(:'|':) host; '|';
        Popt Puint32 size;
    };
"""


def make_file(rng, n, *, fail_rate=0.05, latency_hi=200, bad_rate=0.0,
              none_size=0.2, hosts=("a", "b", "c")):
    lines = []
    for _ in range(n):
        status = "FAIL" if rng.random() < fail_rate else \
            rng.choice(["OK", "OK", "OK", "RETRY"])
        latency = rng.randint(1, latency_hi)
        host = rng.choice(hosts)
        size = "" if rng.random() < none_size else str(rng.randint(1, 9999))
        line = f"{status}|{latency}|{host}|{size}"
        if rng.random() < bad_rate:
            line = f"{status}|XX|{host}|{size}"  # corrupt the latency
        lines.append(line)
    return ("\n".join(lines) + "\n").encode()


@pytest.fixture(scope="module")
def d():
    return compile_description(DESC)


class TestNoDrift:
    def test_same_distribution_is_quiet(self, d):
        old = make_file(random.Random(1), 800)
        new = make_file(random.Random(2), 800)
        report = profile_and_compare(d, "row_t", old, new)
        assert not report.drifted, report.render()
        assert report.render() == "no drift detected"


class TestDriftKinds:
    def test_bad_rate_drift(self, d):
        old = make_file(random.Random(1), 800, bad_rate=0.0)
        new = make_file(random.Random(2), 800, bad_rate=0.15)
        report = profile_and_compare(d, "row_t", old, new)
        kinds = {f.kind for f in report.findings}
        assert "bad-rate" in kinds
        assert any("latency" in f.path for f in report.findings)

    def test_distribution_drift_on_enum(self, d):
        old = make_file(random.Random(1), 800, fail_rate=0.02)
        new = make_file(random.Random(2), 800, fail_rate=0.80)
        report = profile_and_compare(d, "row_t", old, new)
        assert any(f.kind == "distribution" and f.path == "status"
                   for f in report.findings)

    def test_novel_values(self, d):
        old = make_file(random.Random(1), 600, hosts=("a", "b"))
        new = make_file(random.Random(2), 600, hosts=("a", "b", "zz-new"))
        report = profile_and_compare(d, "row_t", old, new)
        novel = [f for f in report.findings if f.kind == "novel-values"]
        assert any("zz-new" in f.detail for f in novel)

    def test_range_drift(self, d):
        old = make_file(random.Random(1), 800, latency_hi=100)
        new = make_file(random.Random(2), 800, latency_hi=5000)
        report = profile_and_compare(d, "row_t", old, new)
        assert any(f.kind == "range" and "latency" in f.path
                   for f in report.findings)

    def test_missing_representation_shift(self, d):
        """A feed that suddenly omits its optional field drifts on the
        Popt tag distribution — the two-missing-representations story."""
        old = make_file(random.Random(1), 800, none_size=0.05)
        new = make_file(random.Random(2), 800, none_size=0.90)
        report = profile_and_compare(d, "row_t", old, new)
        assert any(f.path == "size" and f.kind == "distribution"
                   for f in report.findings)

    def test_findings_ranked_by_severity(self, d):
        old = make_file(random.Random(1), 800)
        new = make_file(random.Random(2), 800, bad_rate=0.3, fail_rate=0.9)
        report = profile_and_compare(d, "row_t", old, new)
        rendered = report.render().splitlines()
        assert len(rendered) >= 2


class TestSmallSamples:
    def test_tiny_files_do_not_alarm(self, d):
        old = make_file(random.Random(1), 5)
        new = make_file(random.Random(2), 5, fail_rate=1.0)
        report = profile_and_compare(d, "row_t", old, new)
        assert not report.drifted  # below min_count


class TestOnPaperWorkloads:
    def test_clf_dash_rate_shift_detected(self, clf):
        old = clf_workload(1500, random.Random(1), dash_rate=0.01)
        new = clf_workload(1500, random.Random(2), dash_rate=0.30)
        report = profile_and_compare(clf, "entry_t", old, new)
        assert any(f.kind == "bad-rate" and f.path.endswith("length")
                   for f in report.findings)

    def test_stable_sirius_profiles_quiet(self, sirius):
        old = sirius_workload(800, random.Random(3)).split(b"\n", 1)[1]
        new = sirius_workload(800, random.Random(4)).split(b"\n", 1)[1]
        report = profile_and_compare(sirius, "entry_t", old, new,
                                     bad_rate_delta=0.05)
        bad_rate = [f for f in report.findings if f.kind == "bad-rate"]
        assert not bad_rate  # both files carry the same calibrated error mix
