"""Unit tests for the core value/mask/error/API modules."""

import random

import pytest

from repro import (
    DateVal,
    EnumVal,
    ErrCode,
    Loc,
    Mask,
    MaskFlag,
    P_Check,
    P_CheckAndSet,
    P_Ignore,
    P_Set,
    PadsError,
    Pd,
    Pstate,
    Rec,
    UnionVal,
    compile_description,
    gallery,
    mask_init,
)
from repro.core.values import FloatVal


class TestRec:
    def test_attribute_and_item_access(self):
        rec = Rec(a=1, b="x")
        assert rec.a == 1 and rec["b"] == "x"
        assert "a" in rec and "z" not in rec
        assert list(rec) == ["a", "b"]
        assert dict(rec.items()) == {"a": 1, "b": "x"}

    def test_mutation(self):
        rec = Rec(a=1)
        rec.a = 5
        rec["b"] = 7
        assert rec.a == 5 and rec.b == 7

    def test_equality(self):
        assert Rec(a=1, b=2) == Rec(a=1, b=2)
        assert Rec(a=1) != Rec(a=2)
        assert Rec(a=1) != "not a rec"

    def test_repr(self):
        assert repr(Rec(a=1)) == "Rec(a=1)"


class TestUnionVal:
    def test_projection(self):
        u = UnionVal("ip", "1.2.3.4")
        assert u.tag == "ip"
        assert u.value == "1.2.3.4"
        assert u.ip == "1.2.3.4"

    def test_wrong_branch_raises(self):
        u = UnionVal("ip", "1.2.3.4")
        with pytest.raises(AttributeError, match="holds 'ip'"):
            _ = u.host

    def test_immutability(self):
        u = UnionVal("a", 1)
        with pytest.raises(AttributeError):
            u.value = 2

    def test_equality(self):
        assert UnionVal("a", 1) == UnionVal("a", 1)
        assert UnionVal("a", 1) != UnionVal("b", 1)


class TestScalarValues:
    def test_enumval_is_str_with_code(self):
        v = EnumVal("GET", 3, "get")
        assert v == "GET"
        assert int(v) == 3
        assert v.physical == "get"

    def test_floatval_is_float_with_raw(self):
        v = FloatVal(0.0, "0")
        assert v == 0.0 and v + 1 == 1.0
        assert v.raw == "0"

    def test_dateval_strftime_shorthands(self):
        v = DateVal(0)
        assert v.strftime("%D") == "01/01/70"
        assert v.strftime("%T") == "00:00:00"

    def test_dateval_cross_type_comparisons(self):
        assert DateVal(100) < DateVal(200)
        assert DateVal(100) <= 100
        assert 150 > DateVal(100)
        assert DateVal(100) != "not comparable"


class TestPd:
    def test_clean(self):
        pd = Pd()
        assert not pd.errors
        assert pd.summary() == "ok"

    def test_first_error_kept(self):
        pd = Pd()
        pd.record_error(ErrCode.INVALID_INT, Loc(3, 5, 0))
        pd.record_error(ErrCode.RANGE_ERR, Loc(9, 9, 0))
        assert pd.nerr == 2
        assert pd.err_code == ErrCode.INVALID_INT
        assert pd.loc.offset == 3
        assert "INVALID_INT" in pd.summary()

    def test_panic_flag(self):
        pd = Pd()
        pd.record_error(ErrCode.MISSING_LITERAL, Loc(), panic=True)
        assert pd.pstate & Pstate.PANIC

    def test_absorb(self):
        parent, child = Pd(), Pd()
        child.record_error(ErrCode.INVALID_IP, Loc(7, 8, 1))
        parent.absorb(child)
        assert parent.nerr == 1
        assert parent.err_code == ErrCode.INVALID_IP
        clean = Pd()
        parent.absorb(clean)
        assert parent.nerr == 1

    def test_error_code_classification(self):
        assert ErrCode.MISSING_LITERAL.is_syntactic()
        assert ErrCode.UNION_MATCH_FAILURE.is_syntactic()
        assert ErrCode.USER_CONSTRAINT_VIOLATION.is_semantic()
        assert not ErrCode.WHERE_CLAUSE_VIOLATION.is_syntactic()

    def test_loc_str(self):
        assert "record 2" in str(Loc(1, 5, 2))
        assert "record" not in str(Loc(1, 5, -1))


class TestMasks:
    def test_flag_combinations(self):
        assert P_CheckAndSet == MaskFlag.SET | MaskFlag.SYN_CHECK | MaskFlag.SEM_CHECK
        assert P_Check == MaskFlag.SYN_CHECK | MaskFlag.SEM_CHECK
        assert int(P_Ignore) == 0

    def test_predicates(self):
        m = Mask(P_CheckAndSet)
        assert m.do_set and m.do_syn and m.do_sem
        m = Mask(P_Set)
        assert m.do_set and not m.do_syn and not m.do_sem

    def test_uniform_child_cached_and_equal(self):
        m = Mask(P_Check)
        child1 = m.for_field("a")
        child2 = m.for_field("b")
        assert child1 is child2
        assert child1.base == P_Check

    def test_field_overrides(self):
        m = Mask(P_CheckAndSet).with_field("x", Mask(P_Ignore))
        assert m.for_field("x").base == P_Ignore
        assert m.for_field("y").base == P_CheckAndSet

    def test_flag_shorthand_in_fields(self):
        m = Mask(P_CheckAndSet)
        m.fields["x"] = P_Set
        assert m.for_field("x").base == P_Set

    def test_compound_level_default_is_base(self):
        m = Mask(P_Check)
        assert m.level == P_Check
        m.compound_level = P_Set
        assert m.level == P_Set
        assert not m.level_sem

    def test_mask_init(self):
        assert mask_init().base == P_CheckAndSet
        assert mask_init(P_Set).base == P_Set


class TestApiEntryPoints:
    def test_count_records(self, sirius):
        assert sirius.count_records(gallery.SIRIUS_SAMPLE) == 3

    def test_open_file(self, clf, tmp_path):
        path = tmp_path / "clf.log"
        path.write_text(gallery.CLF_SAMPLE)
        src = clf.open_file(str(path))
        rep, pd = clf.parse(src)
        assert pd.nerr == 0 and len(rep) == 2
        src.close()

    def test_records_from_file_stream(self, sirius, tmp_path):
        from repro.tools.datagen import sirius_workload
        data = sirius_workload(500, random.Random(6))
        path = tmp_path / "sirius.dat"
        path.write_bytes(data.split(b"\n", 1)[1])
        src = sirius.open_file(str(path))
        count = sum(1 for _ in sirius.records(src, "entry_t"))
        assert count == 500
        src.close()

    def test_unknown_type_raises(self, clf):
        with pytest.raises(PadsError, match="nosuch"):
            clf.parse(b"x", "nosuch")

    def test_array_elements_requires_array(self, clf):
        with pytest.raises(PadsError, match="not a Parray"):
            list(clf.array_elements(b"", "entry_t"))

    def test_source_reuse_across_calls(self, sirius):
        """A Source can be threaded through multiple entry points, the
        paper's 'sequence calls to parsing functions' pattern."""
        src = sirius.open(gallery.SIRIUS_SAMPLE)
        header, hpd = sirius.parse(src, "summary_header_t")
        assert hpd.nerr == 0 and header.tstamp == 1005022800
        orders = [rep for rep, _ in sirius.records(src, "entry_t")]
        assert [o.header.order_num for o in orders] == [9152, 9153]

    def test_str_and_bytes_inputs(self, clf):
        a, _ = clf.parse(gallery.CLF_SAMPLE)
        b, _ = clf.parse(gallery.CLF_SAMPLE.encode())
        assert a == b

    def test_compile_file(self, tmp_path):
        from repro import compile_file
        path = tmp_path / "d.pads"
        path.write_text("Precord Pstruct r { Puint8 x; };")
        d = compile_file(str(path))
        rep, pd = d.parse(b"7\n", "r")
        assert rep.x == 7
