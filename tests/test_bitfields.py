"""Tests for Pbitfields (the paper's Section 9 bit-field construct)."""

import random

import pytest

from repro import ErrCode, Mask, P_Set, compile_description, gallery
from repro.codegen import compile_generated, generate_source
from repro.core.io import NoRecords
from repro.core.masks import MaskFlag
from repro.dsl.parser import parse_description
from repro.dsl.pprint import pp_description
from repro.dsl.typecheck import TypeErrorReport, check_description

from .test_codegen import pd_summary

IPV4_HEADER = """
    Pbitfields ip_hdr_t {
        4 : version : version == 4;
        4 : ihl : ihl >= 5;
        6 : dscp;
        2 : ecn;
        16 : total_length;
    };
    Pstruct packet_t {
        ip_hdr_t hdr;
        Pb_uint16_be ident;
    };
"""


def make(nibbles):
    """Build the 4 header bytes from (version, ihl, dscp, ecn, length)."""
    version, ihl, dscp, ecn, length = nibbles
    word = (version << 28) | (ihl << 24) | (dscp << 18) | (ecn << 16) | length
    return word.to_bytes(4, "big")


class TestParsing:
    @pytest.fixture(scope="class")
    def d(self):
        return compile_description(IPV4_HEADER, ambient="binary",
                                   discipline=NoRecords())

    def test_field_extraction(self, d):
        data = make((4, 5, 10, 1, 1500)) + (7).to_bytes(2, "big")
        rep, pd = d.parse(data, "packet_t")
        assert pd.nerr == 0
        assert rep.hdr.version == 4
        assert rep.hdr.ihl == 5
        assert rep.hdr.dscp == 10
        assert rep.hdr.ecn == 1
        assert rep.hdr.total_length == 1500
        assert rep.ident == 7

    def test_raw_word_kept(self, d):
        data = make((4, 5, 0, 0, 20)) + b"\0\0"
        rep, _ = d.parse(data, "packet_t")
        assert rep.hdr._raw == int.from_bytes(data[:4], "big")

    def test_constraints(self, d):
        data = make((6, 5, 0, 0, 20)) + b"\0\0"  # version 6 violates == 4
        _, pd = d.parse(data, "packet_t")
        assert pd.nerr == 1
        assert pd.fields["hdr"].err_code == ErrCode.USER_CONSTRAINT_VIOLATION

    def test_constraints_masked_off(self, d):
        data = make((6, 5, 0, 0, 20)) + b"\0\0"
        _, pd = d.parse(data, "packet_t", Mask(P_Set | MaskFlag.SYN_CHECK))
        assert pd.nerr == 0

    def test_write_roundtrip(self, d):
        data = make((4, 7, 3, 2, 9999)) + (55).to_bytes(2, "big")
        rep, _ = d.parse(data, "packet_t")
        assert d.write(rep, "packet_t") == data

    def test_truncated_input(self, d):
        _, pd = d.parse(b"\x45", "packet_t")
        assert pd.nerr > 0

    def test_generation(self, d):
        rng = random.Random(0)
        for _ in range(20):
            rep = d.generate("ip_hdr_t", rng)
            assert rep.version == 4 and rep.ihl >= 5
            data = d.write(rep, "ip_hdr_t")
            back, pd = d.parse(data, "ip_hdr_t")
            assert pd.nerr == 0 and back == rep

    def test_verify(self, d):
        rep, _ = d.parse(make((4, 5, 0, 0, 20)) + b"\0\0", "packet_t")
        assert d.verify(rep, "packet_t")


class TestChecking:
    def test_widths_must_fill_bytes(self):
        with pytest.raises(TypeErrorReport, match="whole number of bytes"):
            check_description(parse_description(
                "Pbitfields b { 3 : x; 4 : y; };"))

    def test_width_positive(self):
        with pytest.raises(TypeErrorReport, match="positive"):
            check_description(parse_description(
                "Pbitfields b { 0 : x; 8 : y; };"))

    def test_duplicate_names(self):
        with pytest.raises(TypeErrorReport, match="duplicate"):
            check_description(parse_description(
                "Pbitfields b { 4 : x; 4 : x; };"))

    def test_constraint_scoping(self):
        check_description(parse_description(
            "Pbitfields b { 4 : x; 4 : y : y >= x; };"))
        with pytest.raises(TypeErrorReport, match="unbound"):
            check_description(parse_description(
                "Pbitfields b { 4 : x : x < zz; 4 : y; };"))


class TestCodegenAndTools:
    def test_generated_module_matches_interpreter(self):
        desc_text = """
            Pbitfields flags_t {
                1 : urgent;
                1 : ack;
                6 : window;
            };
            Precord Pstruct row_t {
                flags_t flags;
                Pb_uint8 extra;
            };
        """
        from repro import FixedWidthRecords
        interp = compile_description(desc_text, ambient="binary",
                                     discipline=FixedWidthRecords(2))
        gen = compile_generated(desc_text, ambient="binary",
                                discipline=FixedWidthRecords(2))
        assert "_fp_row_t" in gen.py_source  # bitfields are fast-path eligible
        for word in range(0, 256, 7):
            data = bytes([word, word ^ 0xFF])
            ri, pi = interp.parse(data, "row_t")
            rg, pg = gen.parse(data, "row_t")
            assert pd_summary(pi) == pd_summary(pg)
            assert ri == rg
            assert ri.flags.window == word & 0x3F

    def test_pprint_roundtrip(self):
        text = """
            Pbitfields b { 4 : x : x == 4; 12 : y; };
        """
        printed = pp_description(parse_description(text))
        assert "Pbitfields b {" in printed
        assert pp_description(parse_description(printed)) == printed

    def test_accumulator_over_bitfields(self):
        desc = compile_description(IPV4_HEADER, ambient="binary",
                                   discipline=NoRecords())
        from repro.tools.accum import Accumulator
        acc = Accumulator(desc.node("ip_hdr_t"))
        rng = random.Random(1)
        for _ in range(50):
            rep = desc.generate("ip_hdr_t", rng)
            acc.add(rep, None)
        # The raw word is a data field and is profiled.
        assert acc.field("_raw").self_acc.good == 50
