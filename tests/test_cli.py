"""Tests for the ``padsc`` command line."""

import sys

import pytest

from repro import gallery
from repro.tools.padsc import main


@pytest.fixture
def clf_file(tmp_path):
    path = tmp_path / "clf.pads"
    path.write_text(gallery.CLF)
    return str(path)


@pytest.fixture
def clf_data(tmp_path):
    path = tmp_path / "clf.log"
    path.write_text(gallery.CLF_SAMPLE)
    return str(path)


@pytest.fixture
def sirius_file(tmp_path):
    path = tmp_path / "sirius.pads"
    path.write_text(gallery.SIRIUS)
    return str(path)


@pytest.fixture
def sirius_data(tmp_path):
    path = tmp_path / "sirius.dat"
    path.write_text(gallery.SIRIUS_SAMPLE)
    return str(path)


class TestCheckAndCompile:
    def test_check_ok(self, clf_file, capsys):
        assert main(["check", clf_file]) == 0
        assert "ok" in capsys.readouterr().out

    def test_check_bad_description(self, tmp_path, capsys):
        path = tmp_path / "bad.pads"
        path.write_text("Pstruct p { Pnosuch x; };")
        assert main(["check", str(path)]) == 1
        assert "error" in capsys.readouterr().err

    def test_compile_produces_importable_module(self, clf_file, tmp_path, capsys):
        out = str(tmp_path / "clf_parser.py")
        assert main(["compile", clf_file, "-o", out]) == 0
        sys.path.insert(0, str(tmp_path))
        try:
            import clf_parser  # noqa: F401
            src = clf_parser.Source.from_bytes(gallery.CLF_SAMPLE.encode())
            rep, pd = clf_parser.entry_t_parse(src)
            assert pd.nerr == 0 and rep.response == 200
        finally:
            sys.path.remove(str(tmp_path))
            sys.modules.pop("clf_parser", None)


class TestDataTools:
    def test_accum(self, clf_file, clf_data, capsys):
        assert main(["accum", clf_file, clf_data, "--record", "entry_t",
                     "--field", "length"]) == 0
        out = capsys.readouterr().out
        assert "good: 2 bad: 0" in out
        assert "<top>.length" in out

    def test_fmt_reproduces_figure8(self, clf_file, clf_data, capsys):
        assert main(["fmt", clf_file, clf_data, "--record", "entry_t",
                     "--delims", "|", "--date-format", "%D:%T"]) == 0
        out = capsys.readouterr().out
        assert out == gallery.CLF_FORMATTED

    def test_xml(self, sirius_file, sirius_data, capsys):
        assert main(["xml", sirius_file, sirius_data, "--record",
                     "entry_t"]) == 0
        out = capsys.readouterr().out
        assert "<order_num>9152</order_num>" in out

    def test_xsd(self, sirius_file, capsys):
        assert main(["xsd", sirius_file, "--type", "eventSeq"]) == 0
        out = capsys.readouterr().out
        assert '<xs:complexType name="eventSeq_pd">' in out

    def test_query(self, sirius_file, sirius_data, capsys):
        assert main(["query", sirius_file, sirius_data,
                     "/es/entry/header/order_num", "--root", "sirius"]) == 0
        out = capsys.readouterr().out.split()
        assert out == ["9152", "9153"]

    def test_gen_roundtrip(self, clf_file, tmp_path, capsys):
        out = str(tmp_path / "gen.log")
        assert main(["gen", clf_file, "--type", "entry_t", "-n", "5",
                     "--seed", "3", "-o", out]) == 0
        assert main(["accum", clf_file, out, "--record", "entry_t",
                     "--field", "response"]) == 0
        assert "good: 5 bad: 0" in capsys.readouterr().out

    def test_cobol(self, tmp_path, capsys):
        import importlib.resources as res
        cpy = tmp_path / "billing.cpy"
        cpy.write_text((res.files("repro.gallery") / "billing.cpy").read_text())
        assert main(["cobol", str(cpy)]) == 0
        out = capsys.readouterr().out
        assert "Precord Pstruct billing_record_t" in out


class TestCountAndJobs:
    @pytest.fixture
    def big_log(self, tmp_path):
        import random
        from repro.tools.datagen import clf_workload
        path = tmp_path / "big.log"
        path.write_bytes(clf_workload(2500, random.Random(20050612)))
        return str(path)

    def test_count(self, clf_file, clf_data, capsys):
        assert main(["count", clf_file, clf_data]) == 0
        assert capsys.readouterr().out.strip() == "2"

    def test_count_parallel_matches_serial(self, clf_file, big_log, capsys):
        assert main(["count", clf_file, big_log]) == 0
        serial = capsys.readouterr().out
        assert main(["count", clf_file, big_log, "-j", "2"]) == 0
        assert capsys.readouterr().out == serial
        assert serial.strip() == "2500"

    def test_accum_parallel_matches_serial(self, clf_file, big_log, capsys):
        argv = ["accum", clf_file, big_log, "--record", "entry_t"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_fmt_parallel_matches_serial(self, clf_file, big_log, capsys):
        argv = ["fmt", clf_file, big_log, "--record", "entry_t",
                "--delims", "|"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["-j", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_jobs_on_stdin_falls_back(self, clf_file, clf_data, capsys,
                                      monkeypatch):
        import io as _io
        data = open(clf_data, "rb").read()
        monkeypatch.setattr("sys.stdin",
                            type("S", (), {"buffer": _io.BytesIO(data)})())
        assert main(["count", clf_file, "-", "-j", "4"]) == 0
        assert capsys.readouterr().out.strip() == "2"
