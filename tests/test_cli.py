"""Tests for the ``padsc`` command line."""

import sys

import pytest

from repro import gallery
from repro.tools.padsc import main


@pytest.fixture
def clf_file(tmp_path):
    path = tmp_path / "clf.pads"
    path.write_text(gallery.CLF)
    return str(path)


@pytest.fixture
def clf_data(tmp_path):
    path = tmp_path / "clf.log"
    path.write_text(gallery.CLF_SAMPLE)
    return str(path)


@pytest.fixture
def sirius_file(tmp_path):
    path = tmp_path / "sirius.pads"
    path.write_text(gallery.SIRIUS)
    return str(path)


@pytest.fixture
def sirius_data(tmp_path):
    path = tmp_path / "sirius.dat"
    path.write_text(gallery.SIRIUS_SAMPLE)
    return str(path)


class TestCheckAndCompile:
    def test_check_ok(self, clf_file, capsys):
        assert main(["check", clf_file]) == 0
        assert "ok" in capsys.readouterr().out

    def test_check_bad_description(self, tmp_path, capsys):
        path = tmp_path / "bad.pads"
        path.write_text("Pstruct p { Pnosuch x; };")
        assert main(["check", str(path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_compile_produces_importable_module(self, clf_file, tmp_path, capsys):
        out = str(tmp_path / "clf_parser.py")
        assert main(["compile", clf_file, "-o", out]) == 0
        sys.path.insert(0, str(tmp_path))
        try:
            import clf_parser  # noqa: F401
            src = clf_parser.Source.from_bytes(gallery.CLF_SAMPLE.encode())
            rep, pd = clf_parser.entry_t_parse(src)
            assert pd.nerr == 0 and rep.response == 200
        finally:
            sys.path.remove(str(tmp_path))
            sys.modules.pop("clf_parser", None)


class TestDataTools:
    def test_accum(self, clf_file, clf_data, capsys):
        assert main(["accum", clf_file, clf_data, "--record", "entry_t",
                     "--field", "length"]) == 0
        out = capsys.readouterr().out
        assert "good: 2 bad: 0" in out
        assert "<top>.length" in out

    def test_fmt_reproduces_figure8(self, clf_file, clf_data, capsys):
        assert main(["fmt", clf_file, clf_data, "--record", "entry_t",
                     "--delims", "|", "--date-format", "%D:%T"]) == 0
        out = capsys.readouterr().out
        assert out == gallery.CLF_FORMATTED

    def test_xml(self, sirius_file, sirius_data, capsys):
        assert main(["xml", sirius_file, sirius_data, "--record",
                     "entry_t"]) == 0
        out = capsys.readouterr().out
        assert "<order_num>9152</order_num>" in out

    def test_xsd(self, sirius_file, capsys):
        assert main(["xsd", sirius_file, "--type", "eventSeq"]) == 0
        out = capsys.readouterr().out
        assert '<xs:complexType name="eventSeq_pd">' in out

    def test_query(self, sirius_file, sirius_data, capsys):
        assert main(["query", sirius_file, sirius_data,
                     "/es/entry/header/order_num", "--root", "sirius"]) == 0
        out = capsys.readouterr().out.split()
        assert out == ["9152", "9153"]

    def test_gen_roundtrip(self, clf_file, tmp_path, capsys):
        out = str(tmp_path / "gen.log")
        assert main(["gen", clf_file, "--type", "entry_t", "-n", "5",
                     "--seed", "3", "-o", out]) == 0
        assert main(["accum", clf_file, out, "--record", "entry_t",
                     "--field", "response"]) == 0
        assert "good: 5 bad: 0" in capsys.readouterr().out

    def test_cobol(self, tmp_path, capsys):
        import importlib.resources as res
        cpy = tmp_path / "billing.cpy"
        cpy.write_text((res.files("repro.gallery") / "billing.cpy").read_text())
        assert main(["cobol", str(cpy)]) == 0
        out = capsys.readouterr().out
        assert "Precord Pstruct billing_record_t" in out


class TestCountAndJobs:
    @pytest.fixture
    def big_log(self, tmp_path):
        import random
        from repro.tools.datagen import clf_workload
        path = tmp_path / "big.log"
        path.write_bytes(clf_workload(2500, random.Random(20050612)))
        return str(path)

    def test_count(self, clf_file, clf_data, capsys):
        assert main(["count", clf_file, clf_data]) == 0
        assert capsys.readouterr().out.strip() == "2"

    def test_count_parallel_matches_serial(self, clf_file, big_log, capsys):
        assert main(["count", clf_file, big_log]) == 0
        serial = capsys.readouterr().out
        assert main(["count", clf_file, big_log, "-j", "2"]) == 0
        assert capsys.readouterr().out == serial
        assert serial.strip() == "2500"

    def test_accum_parallel_matches_serial(self, clf_file, big_log, capsys):
        argv = ["accum", clf_file, big_log, "--record", "entry_t"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_fmt_parallel_matches_serial(self, clf_file, big_log, capsys):
        argv = ["fmt", clf_file, big_log, "--record", "entry_t",
                "--delims", "|"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["-j", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_jobs_on_stdin_pipelines_into_the_pool(self, clf_file, big_log,
                                                   capsys, monkeypatch):
        # --jobs on stdin feeds the pool chunk-by-chunk (no silent
        # one-core degrade, no slurp); same count as the serial path.
        import io as _io
        data = open(big_log, "rb").read()
        monkeypatch.setattr("sys.stdin",
                            type("S", (), {"buffer": _io.BytesIO(data)})())
        assert main(["count", clf_file, "-", "-j", "4"]) == 0
        assert capsys.readouterr().out.strip() == "2500"

    def test_jobs_on_unchunkable_stdin_is_an_error(self, tmp_path, capsys,
                                                   monkeypatch):
        # The CLI contract: --jobs it cannot honour is exit 2 with one
        # diagnostic line, never a silent serial run.
        import io as _io
        desc = tmp_path / "v.pads"
        desc.write_text("Precord Pstruct entry_t { Puint32 n; };")
        monkeypatch.setattr("sys.stdin",
                            type("S", (), {"buffer": _io.BytesIO(b"")})())
        assert main(["count", str(desc), "-", "-j", "4",
                     "--records", "lenprefix:4"]) == 2
        err = capsys.readouterr().err
        assert "cannot split" in err
        assert err.strip().count("\n") == 0

    def test_follow_with_jobs_is_an_error(self, clf_file, clf_data, capsys):
        assert main(["count", clf_file, clf_data, "-j", "2",
                     "--follow", "0.1"]) == 2
        err = capsys.readouterr().err
        assert "--follow" in err
        assert err.strip().count("\n") == 0

    def test_xml_parallel_matches_serial(self, clf_file, big_log, capsys):
        argv = ["xml", clf_file, big_log, "--record", "entry_t"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["-j", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_fmt_stdout_is_byte_transparent(self, tmp_path, capsysbinary):
        """High bytes reach stdout as the bytes they were parsed from,
        not their utf-8 re-encoding (fmt/xml write raw bytes)."""
        desc = tmp_path / "l1.pads"
        desc.write_text("Precord Pstruct entry_t {"
                        " Pstring(:'|':) name; '|'; Puint32 n; };")
        data = tmp_path / "l1.dat"
        data.write_bytes(b"caf\xe9|7\nna\xefve|9\n")
        assert main(["fmt", str(desc), str(data),
                     "--record", "entry_t"]) == 0
        out = capsysbinary.readouterr().out
        assert out == b"caf\xe9|7\nna\xefve|9\n"
        assert main(["xml", str(desc), str(data),
                     "--record", "entry_t"]) == 0
        out = capsysbinary.readouterr().out
        assert b"<name>caf\xe9</name>" in out
        assert b"caf\xc3\xa9" not in out

    def test_accum_report_is_byte_transparent(self, tmp_path, capsysbinary):
        """Accumulator reports quote raw field bytes; high bytes must not
        mojibake into their utf-8 re-encoding (the fmt/xml treatment)."""
        desc = tmp_path / "l1.pads"
        desc.write_text("Precord Pstruct entry_t {"
                        " Pstring(:'|':) name; '|'; Puint32 n; };")
        data = tmp_path / "l1.dat"
        data.write_bytes(b"caf\xe9|7\nna\xefve|9\n")
        assert main(["accum", str(desc), str(data),
                     "--record", "entry_t"]) == 0
        out = capsysbinary.readouterr().out
        assert b"caf\xe9" in out
        assert b"caf\xc3\xa9" not in out

    def test_stdin_count_streams_without_slurp(self, clf_file, big_log,
                                               capsys, monkeypatch):
        """Stdin reads through a sliding window: a tiny window still
        counts every record of an input many times its size."""
        import io as _io
        data = open(big_log, "rb").read()
        monkeypatch.setattr("sys.stdin",
                            type("S", (), {"buffer": _io.BytesIO(data)})())
        assert main(["count", clf_file, "-", "--window", "4096"]) == 0
        assert capsys.readouterr().out.strip() == "2500"

    def test_follow_idle_timeout_drains_growing_file(self, clf_file,
                                                     big_log, capsys):
        assert main(["count", clf_file, big_log, "--follow", "0.2"]) == 0
        assert capsys.readouterr().out.strip() == "2500"


class TestObservabilityFlags:
    @pytest.fixture
    def big_log(self, tmp_path):
        import random
        from repro.tools.datagen import clf_workload
        path = tmp_path / "big.log"
        path.write_bytes(clf_workload(800, random.Random(7)))
        return str(path)

    @staticmethod
    def _deterministic(doc):
        """The projection of a --stats=json doc that must be identical
        between serial and parallel runs (drop wall-clock values)."""
        doc = dict(doc)
        doc.pop("throughput", None)
        doc["latency"] = {name: {"count": hist["count"]}
                         for name, hist in doc["latency"].items()}
        return doc

    def test_stats_text_goes_to_stderr(self, clf_file, clf_data, capsys):
        assert main(["accum", clf_file, clf_data, "--record", "entry_t",
                     "--stats"]) == 0
        captured = capsys.readouterr()
        assert "records: 2" in captured.err
        assert "records/sec" in captured.err
        assert "records/sec" not in captured.out  # stdout stays data-only

    def test_stats_json_shape(self, clf_file, clf_data, capsys):
        import json
        assert main(["fmt", clf_file, clf_data, "--record", "entry_t",
                     "--delims", "|", "--date-format", "%D:%T",
                     "--stats=json"]) == 0
        captured = capsys.readouterr()
        doc = json.loads(captured.err)
        assert doc["records"]["total"] == 2
        assert doc["bytes"]["total"] == len(gallery.CLF_SAMPLE)
        assert {"records", "bytes", "errors", "latency", "record_bytes",
                "resync", "throughput"} <= set(doc)
        assert captured.out == gallery.CLF_FORMATTED

    def test_stats_json_serial_matches_parallel(self, clf_file, big_log,
                                                capsys):
        import json
        argv = ["accum", clf_file, big_log, "--record", "entry_t",
                "--stats=json"]
        assert main(argv) == 0
        serial = capsys.readouterr()
        assert main(argv + ["-j", "4"]) == 0
        parallel = capsys.readouterr()
        assert parallel.out == serial.out
        # cmd_accum also notes the record count on stderr; the stats
        # document is the JSON object that follows.
        s_doc = self._deterministic(json.loads(serial.err[serial.err.index("{"):]))
        p_doc = self._deterministic(json.loads(parallel.err[parallel.err.index("{"):]))
        assert s_doc == p_doc
        assert s_doc["records"]["total"] == 800

    def test_trace_to_file(self, clf_file, clf_data, tmp_path, capsys):
        import json
        out = tmp_path / "trace.jsonl"
        assert main(["xml", clf_file, clf_data, "--record", "entry_t",
                     "--trace", str(out)]) == 0
        events = [json.loads(line)
                  for line in out.read_text().splitlines()]
        assert events
        assert {"kind", "path", "type", "start", "end", "record",
                "outcome", "err"} <= set(events[0])
        assert sum(1 for e in events if e["kind"] == "record") == 2

    def test_trace_default_streams_to_stderr(self, clf_file, clf_data,
                                             capsys):
        import json
        assert main(["count", clf_file, clf_data, "--trace"]) == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == "2"
        # count never parses fields, so only the stream being valid JSONL
        # (possibly empty) is guaranteed here.
        for line in captured.err.splitlines():
            json.loads(line)

    def test_stats_flag_error_paths_keep_exit_codes(self, tmp_path, capsys):
        bad = tmp_path / "bad.pads"
        bad.write_text("Pstruct p { Pnosuch x; };")
        data = tmp_path / "d.txt"
        data.write_text("x\n")
        assert main(["accum", str(bad), str(data), "--record", "p",
                     "--stats"]) == 2
        assert main(["query", "/nonexistent.pads", str(data), "/a",
                     "--stats=json"]) == 2


class TestFlagConflictMatrix:
    """The audited flag-conflict matrix: every invalid combination is
    one diagnostic line on stderr and exit code 2 — never a traceback,
    never a silently different run.  Before the audit, several of these
    tracebacked (``--records fixed:abc``) or silently ignored a flag
    (``--engine batch --jobs 2`` ran the parallel pool)."""

    CASES = [
        # malformed record-discipline specs used to escape as ValueError
        (["--records", "fixed:abc"], "bad record discipline"),
        (["--records", "fixed:0"], "bad record discipline"),
        (["--records", "lenprefix:xyz"], "bad record discipline"),
        (["--records", "martian"], "unknown record discipline"),
        # nonsense numeric flags
        (["--jobs", "0"], "--jobs 0"),
        (["--jobs", "-3"], "--jobs -3"),
        (["--window", "0"], "--window 0"),
        (["--window", "-1"], "--window -1"),
        # engine pinning vs. process fan-out
        (["--engine", "cursor", "--jobs", "2"], "--engine cursor"),
        (["--engine", "batch", "--jobs", "2"], "--engine batch"),
        # unbounded tails cannot fan out or checkpoint
        (["--follow", "--jobs", "2"], "--follow"),
        (["--checkpoint", "--follow"], "cannot be checkpointed"),
        (["--checkpoint", "--engine", "batch"], "no mid-grid cursor"),
        # budgets with malformed specs
        (["--limits", "nope=1"], "bad --limits entry"),
        (["--limits", "deadline=soon"], "bad --limits value"),
    ]

    @pytest.mark.parametrize("extra,needle", CASES,
                             ids=[" ".join(c[0]) for c in CASES])
    def test_invalid_combo_exits_2(self, clf_file, clf_data, capsys,
                                   extra, needle):
        rc = main(["count", clf_file, clf_data] + extra)
        captured = capsys.readouterr()
        assert rc == 2
        assert "Traceback" not in captured.err
        assert needle in captured.err
        diag = [ln for ln in captured.err.splitlines() if ln.strip()]
        assert len(diag) == 1 and diag[0].startswith("padsc: ")

    def test_checkpoint_on_stdin_is_an_error(self, clf_file, capsys,
                                             monkeypatch):
        import io
        monkeypatch.setattr(sys, "stdin", io.TextIOWrapper(io.BytesIO(b"")))
        rc = main(["count", clf_file, "-", "--checkpoint"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "seekable file" in captured.err
        assert "Traceback" not in captured.err

    SERVE_CASES = [
        (["--port", "99999"], "out of range"),
        (["--port", "-1"], "out of range"),
        (["--jobs", "0"], "--jobs 0"),
        (["--cache", "0"], "--cache"),
        (["--workers", "0"], "--workers"),
        (["--max-body", "0"], "--max-body"),
        (["--parallel-threshold", "-1"], "--parallel-threshold"),
        (["--limits", "nope=1"], "bad --limits entry"),
        (["--tenant-limits", "noseparator"], "--tenant-limits wants"),
        (["--tenant-limits", "gold:bogus=1"], "bad --limits entry"),
    ]

    @pytest.mark.parametrize("extra,needle", SERVE_CASES,
                             ids=[" ".join(c[0]) for c in SERVE_CASES])
    def test_serve_flag_validation(self, capsys, extra, needle):
        rc = main(["serve"] + extra)
        captured = capsys.readouterr()
        assert rc == 2
        assert "Traceback" not in captured.err
        assert needle in captured.err
