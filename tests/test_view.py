"""Tests for the field-annotated record viewer (tools.view)."""

import pytest

from repro import gallery
from repro.tools.view import hex_dump, render_record, trace_record


class TestTrace:
    def test_spans_cover_clf_record(self, clf):
        line = gallery.CLF_SAMPLE.splitlines()[0] + "\n"
        rep, pd, events, payload, base = trace_record(clf, line, "entry_t")
        assert pd.nerr == 0
        paths = [e.path for e in events]
        assert "client<ip>" in paths
        assert "request.meth" in paths
        assert "length" in paths
        # Spans are within the record and non-overlapping in order.
        rel = [(e.start - base, e.end - base) for e in events]
        assert all(0 <= s <= t <= len(payload) for s, t in rel)
        assert all(rel[i][1] <= rel[i + 1][0] for i in range(len(rel) - 1))

    def test_values_match_parse(self, clf):
        line = gallery.CLF_SAMPLE.splitlines()[0] + "\n"
        rep, pd, events, _, _ = trace_record(clf, line, "entry_t")
        by_path = {e.path: e.value for e in events}
        assert by_path["client<ip>"] == "207.136.97.49"
        assert by_path["response"] == 200
        assert by_path["length"] == 30

    def test_losing_union_branches_leave_no_events(self, clf):
        # Hostname record: the failed Pip attempt must not appear.
        line = gallery.CLF_SAMPLE.splitlines()[1] + "\n"
        _, _, events, _, _ = trace_record(clf, line, "entry_t")
        paths = [e.path for e in events]
        assert "client<host>" in paths
        assert "client<ip>" not in paths

    def test_array_elements_traced(self, sirius):
        line = gallery.SIRIUS_SAMPLE.splitlines()[2] + "\n"
        _, pd, events, _, _ = trace_record(sirius, line, "entry_t")
        assert pd.nerr == 0
        states = [e.value for e in events if e.path == "events[].state"]
        assert states == ["LOC_CRTE", "LOC_OS_10"]

    def test_opt_none_leaves_no_event(self, sirius):
        line = gallery.SIRIUS_SAMPLE.splitlines()[1] + "\n"
        _, _, events, _, _ = trace_record(sirius, line, "entry_t")
        paths = [e.path for e in events]
        assert "header.nlp_service_tn" not in paths  # the omitted field

    def test_traced_parse_equals_plain_parse(self, sirius):
        line = gallery.SIRIUS_SAMPLE.splitlines()[1] + "\n"
        traced_rep, traced_pd, _, _, _ = trace_record(sirius, line, "entry_t")
        plain_rep, plain_pd = sirius.parse(line, "entry_t")
        assert traced_rep == plain_rep
        assert traced_pd.nerr == plain_pd.nerr

    def test_error_records_still_render(self, clf):
        bad = gallery.CLF_SAMPLE.splitlines()[0].replace(" 30", " -") + "\n"
        rep, pd, events, _, _ = trace_record(clf, bad, "entry_t")
        assert pd.nerr == 1
        assert any(e.kind == "error" for e in events)


class TestRendering:
    def test_hex_dump_layout(self):
        out = hex_dump(b"hello world, this is longer than sixteen")
        lines = out.splitlines()
        assert lines[0].startswith("  000000  68 65 6c 6c 6f")
        assert "|hello world, thi|" in lines[0]
        assert lines[1].startswith("  000010")

    def test_render_record(self, clf):
        out = render_record(clf, gallery.CLF_SAMPLE, "entry_t")
        assert "record:" in out and "ok" in out
        assert "client<ip>" in out
        assert "207.136.97.49" in out
        assert "|207.136.97.49" in out  # hex panel text column

    def test_cli_view(self, tmp_path, capsys):
        from repro.tools.padsc import main
        desc = tmp_path / "clf.pads"
        desc.write_text(gallery.CLF)
        data = tmp_path / "clf.log"
        data.write_text(gallery.CLF_SAMPLE)
        assert main(["view", str(desc), str(data), "--record", "entry_t",
                     "--index", "1"]) == 0
        out = capsys.readouterr().out
        assert "tj62.aol.com" in out
        assert "client<host>" in out

    def test_cli_view_index_out_of_range(self, tmp_path, capsys):
        from repro.tools.padsc import main
        desc = tmp_path / "clf.pads"
        desc.write_text(gallery.CLF)
        data = tmp_path / "clf.log"
        data.write_text(gallery.CLF_SAMPLE)
        assert main(["view", str(desc), str(data), "--record", "entry_t",
                     "--index", "9"]) == 1
