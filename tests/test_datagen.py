"""Tests for data generation and error injection (paper Section 9)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import compile_description, gallery
from repro.tools.datagen import (
    ErrorInjector,
    call_detail_workload,
    clf_workload,
    duplicate_field_separator,
    garble_byte,
    generate_records,
    generate_source,
    sirius_workload,
    truncate_record,
)


class TestGenericGeneration:
    DESC = """
      Penum kind_t { A, B, C };
      Precord Pstruct row_t {
        kind_t kind; '|';
        Puint16 n : n < 1000; '|';
        Popt Pzip zip; '|';
        Pstring(:';':) label; ';';
      };
    """

    def test_generated_records_parse_cleanly(self, rng):
        d = compile_description(self.DESC)
        for record in generate_records(d, "row_t", 50, rng):
            _, pd = d.parse(record, "row_t")
            assert pd.nerr == 0, record

    def test_generation_is_deterministic_under_seed(self):
        d = compile_description(self.DESC)
        a = list(generate_records(d, "row_t", 10, random.Random(5)))
        b = list(generate_records(d, "row_t", 10, random.Random(5)))
        assert a == b

    def test_generate_source_concatenates(self, rng):
        d = compile_description(self.DESC)
        data = generate_source(d, "row_t", 20, rng)
        assert data.count(b"\n") == 20
        out = list(d.records(data, "row_t"))
        assert len(out) == 20

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_generated_data_is_clean(self, seed):
        d = compile_description(self.DESC)
        data = generate_source(d, "row_t", 5, random.Random(seed))
        assert all(pd.nerr == 0 for _, pd in d.records(data, "row_t"))


class TestErrorInjection:
    def test_rate_zero_never_corrupts(self, rng):
        inj = ErrorInjector(0.0)
        record = b"hello world|123\n"
        assert all(inj.maybe_corrupt(record, rng) == record for _ in range(100))
        assert inj.injected == 0

    def test_rate_one_always_corrupts(self, rng):
        inj = ErrorInjector(1.0)
        record = b"hello world|123\n"
        outs = [inj.maybe_corrupt(record, rng) for _ in range(50)]
        assert inj.injected == 50
        assert any(o != record for o in outs)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            ErrorInjector(1.5)

    def test_mutators_preserve_record_terminator(self, rng):
        record = b"abc|def|123\n"
        for mut in (truncate_record, garble_byte, duplicate_field_separator):
            out = mut(record, rng)
            assert out.endswith(b"\n")

    def test_injected_errors_detected(self, rng):
        d = compile_description(TestGenericGeneration.DESC)
        inj = ErrorInjector(0.5, mutators=[garble_byte])
        data = generate_source(d, "row_t", 200, rng, inj)
        bad = sum(1 for _, pd in d.records(data, "row_t") if pd.nerr)
        assert inj.injected > 50
        # Most (not necessarily all) corruptions are detectable.
        assert bad >= inj.injected * 0.5


class TestClfWorkload:
    def test_parses_with_expected_bad_rate(self, clf, rng):
        data = clf_workload(2000, rng)
        results = list(clf.records(data, "entry_t"))
        assert len(results) == 2000
        bad = sum(1 for _, pd in results if pd.nerr)
        assert 0.04 < bad / 2000 < 0.10

    def test_dash_rate_zero_is_clean(self, clf, rng):
        data = clf_workload(300, rng, dash_rate=0.0)
        assert all(pd.nerr == 0 for _, pd in clf.records(data, "entry_t"))

    def test_contains_both_client_kinds(self, clf, rng):
        data = clf_workload(500, rng, dash_rate=0.0)
        tags = {rep.client.tag for rep, _ in clf.records(data, "entry_t")}
        assert tags == {"ip", "host"}


class TestSiriusWorkload:
    def test_error_calibration(self, sirius, rng):
        data = sirius_workload(1000, rng)
        body = data.split(b"\n", 1)[1]
        results = list(sirius.records(body, "entry_t"))
        assert len(results) == 1000
        bad = sum(1 for _, pd in results if pd.nerr)
        assert bad == 54  # 53 syntax + 1 sort violation (the paper's file)

    def test_header_line(self, sirius, rng):
        data = sirius_workload(10, rng, syntax_errors=0, sort_violations=0)
        rep, pd = sirius.parse(data)
        assert pd.nerr == 0
        assert rep.h.tstamp == 1_005_022_800

    def test_event_statistics_shape(self, sirius, rng):
        """Events per order: min 1, avg ~5.5, max clamped (paper Sec. 7)."""
        data = sirius_workload(3000, rng, syntax_errors=0, sort_violations=0)
        body = data.split(b"\n", 1)[1]
        lengths = [len(rep.events) for rep, _ in sirius.records(body, "entry_t")]
        assert min(lengths) >= 1
        assert 3.5 < sum(lengths) / len(lengths) < 7.5
        assert max(lengths) <= 156

    def test_small_files_clip_error_counts(self, sirius, rng):
        data = sirius_workload(50, rng)
        body = data.split(b"\n", 1)[1]
        bad = sum(1 for _, pd in sirius.records(body, "entry_t") if pd.nerr)
        assert bad <= 10  # errors never dominate small files


class TestBinaryWorkload:
    def test_call_detail_parses(self, call_detail, rng):
        data = call_detail_workload(500, rng)
        rep, pd = call_detail.parse(data, "calls_t")
        assert len(rep) == 500 and pd.nerr == 0

    def test_connect_times_monotonic(self, call_detail, rng):
        data = call_detail_workload(100, rng)
        rep, _ = call_detail.parse(data, "calls_t")
        times = [c.connect_time for c in rep]
        assert times == sorted(times)
