"""Integration tests: the paper's own descriptions over the paper's own data.

These tests pin the reproduction to the artifacts printed in the paper:
Figures 2/3 (sample data), Figures 4/5 (descriptions), and the semantic
claims the prose makes about them (the '-' length discovery, the timestamp
sort constraint, the two missing-phone-number representations).
"""

import pytest

from repro import ErrCode, Mask, P_CheckAndSet, P_Set, UnionVal, gallery
from repro.core.masks import MaskFlag


class TestCLF:
    def test_sample_parses_cleanly(self, clf):
        rep, pd = clf.parse(gallery.CLF_SAMPLE)
        assert pd.nerr == 0
        assert len(rep) == 2

    def test_first_record_fields(self, clf):
        rep, _ = clf.parse(gallery.CLF_SAMPLE)
        e = rep[0]
        assert e.client.tag == "ip"
        assert e.client.value == "207.136.97.49"
        assert e.remoteID.tag == "unauthorized"
        assert e.auth.tag == "unauthorized"
        assert e.request.meth == "GET"
        assert e.request.req_uri == "/tk/p.txt"
        assert e.request.version.major == 1
        assert e.request.version.minor == 0
        assert e.response == 200
        assert e.length == 30

    def test_second_record_is_hostname(self, clf):
        rep, _ = clf.parse(gallery.CLF_SAMPLE)
        e = rep[1]
        assert e.client.tag == "host"
        assert e.client.value == "tj62.aol.com"
        assert e.request.meth == "POST"
        assert e.length == 941

    def test_roundtrip(self, clf):
        rep, _ = clf.parse(gallery.CLF_SAMPLE)
        assert clf.write(rep) == gallery.CLF_SAMPLE.encode()

    def test_dash_in_length_is_the_paper_error(self, clf):
        """Section 5.2: 'web servers occasionally store the '-' character
        rather than the actual number of bytes returned'."""
        bad = gallery.CLF_SAMPLE.replace(" 200 30", " 200 -")
        rep, pd = clf.parse(bad)
        assert pd.nerr == 1
        entry_pd = pd.elts[0]
        assert entry_pd.fields["length"].err_code == ErrCode.INVALID_INT

    def test_obsolete_method_constraint(self, clf):
        """chkVersion: LINK/UNLINK only under HTTP/1.1."""
        bad = gallery.CLF_SAMPLE.replace('"GET /tk/p.txt HTTP/1.0"',
                                         '"LINK /tk/p.txt HTTP/1.0"')
        rep, pd = clf.parse(bad)
        assert pd.nerr == 1
        ok = gallery.CLF_SAMPLE.replace('"GET /tk/p.txt HTTP/1.0"',
                                        '"LINK /tk/p.txt HTTP/1.1"')
        rep, pd = clf.parse(ok)
        assert pd.nerr == 0

    def test_response_code_constraint(self, clf):
        bad = gallery.CLF_SAMPLE.replace(" 200 30", " 999 30")
        _, pd = clf.parse(bad)
        assert pd.nerr == 1

    def test_records_entry_point(self, clf):
        out = list(clf.records(gallery.CLF_SAMPLE, "entry_t"))
        assert len(out) == 2
        assert all(pd.nerr == 0 for _, pd in out)


class TestSirius:
    def test_sample_parses_cleanly(self, sirius):
        rep, pd = sirius.parse(gallery.SIRIUS_SAMPLE)
        assert pd.nerr == 0
        assert rep.h.tstamp == 1005022800
        assert len(rep.es) == 2

    def test_order_header_fields(self, sirius):
        rep, _ = sirius.parse(gallery.SIRIUS_SAMPLE)
        h = rep.es[0].header
        assert h.order_num == 9152
        assert h.att_order_num == 9152
        assert h.ord_version == 1
        assert h.service_tn == 9735551212
        assert h.billing_tn == 0
        assert h.nlp_service_tn is None  # empty field -> Popt NONE
        assert h.nlp_billing_tn == 9085551212
        assert h.zip_code == "07988"
        assert h.order_type == "EDTF_6"
        assert h.stream == "DUO"

    def test_noii_billing_identifier(self, sirius):
        """The generated-identifier branch: 'no_ii' prefix (Section 2.2)."""
        rep, _ = sirius.parse(gallery.SIRIUS_SAMPLE)
        ramp0 = rep.es[0].header.ramp
        assert ramp0.tag == "genRamp"
        assert ramp0.value.id == 152272
        ramp1 = rep.es[1].header.ramp
        assert ramp1.tag == "ramp"
        assert ramp1.value == 152268

    def test_event_sequences(self, sirius):
        rep, _ = sirius.parse(gallery.SIRIUS_SAMPLE)
        ev0 = rep.es[0].events
        assert [(e.state, e.tstamp) for e in ev0] == [("10", 1000295291)]
        ev1 = rep.es[1].events
        assert [(e.state, e.tstamp) for e in ev1] == [
            ("LOC_CRTE", 1001476800), ("LOC_OS_10", 1001649601)]

    def test_roundtrip(self, sirius):
        rep, _ = sirius.parse(gallery.SIRIUS_SAMPLE)
        assert sirius.write(rep) == gallery.SIRIUS_SAMPLE.encode()

    def test_unsorted_timestamps_flagged(self, sirius):
        """The Pwhere sortedness constraint from Figure 5."""
        bad = gallery.SIRIUS_SAMPLE.replace("LOC_CRTE|1001476800|LOC_OS_10|1001649601",
                                            "LOC_CRTE|1001649601|LOC_OS_10|1001476800")
        _, pd = sirius.parse(bad)
        assert pd.nerr == 1

    def test_sort_check_can_be_masked_off(self, sirius):
        """Figure 7 sets mask.events.compoundLevel = P_Set to skip the sort
        check while still materialising events."""
        bad = gallery.SIRIUS_SAMPLE.replace("LOC_CRTE|1001476800|LOC_OS_10|1001649601",
                                            "LOC_CRTE|1001649601|LOC_OS_10|1001476800")
        entry_mask = Mask(P_CheckAndSet)
        events_mask = Mask(P_CheckAndSet)
        events_mask.compound_level = P_Set
        entry_mask.fields["events"] = events_mask
        body = bad.split("\n", 1)[1]  # skip the summary header record
        out = list(sirius.records(body, "entry_t", mask=entry_mask))
        assert [pd.nerr for _, pd in out] == [0, 0]
        assert len(out[1][0].events) == 2
        # The same data with the default mask does report the violation.
        out = list(sirius.records(body, "entry_t"))
        assert sum(pd.nerr for _, pd in out) == 1

    def test_two_missing_phone_number_representations(self, sirius):
        """Section 5.1.1: missing numbers appear as omitted fields (Popt
        NONE) or as the value 0."""
        rep, _ = sirius.parse(gallery.SIRIUS_SAMPLE)
        h = rep.es[0].header
        assert h.nlp_service_tn is None   # representation 1: omitted
        assert h.billing_tn == 0          # representation 2: zero

    def test_verify_after_normalisation(self, sirius):
        """The cnvPhoneNumbers flow from Figure 7: converting zeroes to
        NONE must leave a verifiable value."""
        rep, pd = sirius.parse(gallery.SIRIUS_SAMPLE)
        for entry in rep.es:
            h = entry.header
            for field in ("service_tn", "billing_tn",
                          "nlp_service_tn", "nlp_billing_tn"):
                if getattr(h, field) == 0:
                    setattr(h, field, None)
        assert sirius.verify(rep)
        assert rep.es[0].header.billing_tn is None

    def test_syntax_error_in_one_record_is_contained(self, sirius):
        lines = gallery.SIRIUS_SAMPLE.strip().split("\n")
        lines[1] = "garbage record with no pipes at all"
        data = "\n".join(lines) + "\n"
        rep, pd = sirius.parse(data)
        assert pd.nerr > 0
        # The following record still parses.
        assert rep.es[-1].header.order_num == 9153


class TestBinaryGallery:
    def test_call_detail_roundtrip(self, call_detail, rng):
        reps = [call_detail.generate("call_t", rng) for _ in range(20)]
        data = call_detail.write(reps, "calls_t")
        assert len(data) == 20 * gallery.CALL_DETAIL_WIDTH
        back, pd = call_detail.parse(data, "calls_t")
        assert pd.nerr == 0
        assert back == reps

    def test_call_type_constraint(self, call_detail, rng):
        rep = call_detail.generate("call_t", rng)
        rep.call_type = 250
        data = call_detail.write([rep], "calls_t")
        _, pd = call_detail.parse(data, "calls_t")
        assert pd.nerr == 1

    def test_netflow_count_drives_array(self, netflow, rng):
        pkt = netflow.generate("nf_packet_t", rng)
        assert pkt.hdr.count == len(pkt.flows)
        data = netflow.write(pkt, "nf_packet_t")
        back, pd = netflow.parse(data, "nf_packet_t")
        assert pd.nerr == 0
        assert len(back.flows) == pkt.hdr.count

    def test_netflow_stream(self, netflow, rng):
        pkts = [netflow.generate("nf_packet_t", rng) for _ in range(5)]
        data = b"".join(netflow.write(p, "nf_packet_t") for p in pkts)
        back, pd = netflow.parse(data)
        assert pd.nerr == 0
        assert len(back) == 5

    def test_netflow_version_constraint(self, netflow, rng):
        pkt = netflow.generate("nf_packet_t", rng)
        data = bytearray(netflow.write(pkt, "nf_packet_t"))
        data[0:2] = (9).to_bytes(2, "big")  # corrupt the version field
        _, pd = netflow.parse(bytes(data), "nf_packet_t")
        assert pd.nerr >= 1
