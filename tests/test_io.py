"""Tests for the Source byte cursor and record disciplines."""

import io

import pytest
from hypothesis import given, strategies as st

from repro.core.io import (
    FixedWidthRecords,
    LengthPrefixedRecords,
    NewlineRecords,
    NoRecords,
    Source,
)


class TestCursorBasics:
    def test_peek_take(self):
        src = Source.from_bytes(b"hello")
        assert src.peek(3) == b"hel"
        assert src.take(2) == b"he"
        assert src.take(10) == b"llo"
        assert src.at_eof()

    def test_match_bytes(self):
        src = Source.from_bytes(b"HTTP/1.0")
        assert src.match_bytes(b"HTTP/")
        assert not src.match_bytes(b"2")
        assert src.peek(1) == b"1"

    def test_take_until(self):
        src = Source.from_bytes(b"abc|def")
        assert src.take_until(b"|") == b"abc"
        assert src.peek(1) == b"|"

    def test_take_until_missing_does_not_move(self):
        src = Source.from_bytes(b"abcdef")
        assert src.take_until(b"|") is None
        assert src.pos == 0

    def test_take_span(self):
        src = Source.from_bytes(b"12345abc")
        digits = frozenset(b"0123456789")
        assert src.take_span(digits) == b"12345"
        assert src.take_span(digits) == b""
        assert src.peek(1) == b"a"

    def test_take_rest(self):
        src = Source.from_bytes(b"xyz")
        src.take(1)
        assert src.take_rest() == b"yz"
        assert src.at_eof()


class TestCheckpoints:
    def test_mark_restore(self):
        src = Source.from_bytes(b"abcdef")
        src.take(2)
        state = src.mark()
        src.take(3)
        src.restore(state)
        assert src.peek(1) == b"c"

    def test_commit(self):
        src = Source.from_bytes(b"abcdef")
        state = src.mark()
        src.take(3)
        src.commit(state)
        assert src.peek(1) == b"d"


class TestNewlineRecords:
    def test_record_scoping(self):
        src = Source.from_bytes(b"one\ntwo\n", NewlineRecords())
        assert src.begin_record()
        assert src.take_rest() == b"one"
        assert src.at_eor()
        src.end_record()
        assert src.begin_record()
        assert src.record_bytes() == b"two"
        src.end_record()
        assert not src.begin_record()

    def test_reads_clamped_to_record(self):
        src = Source.from_bytes(b"ab\ncd\n", NewlineRecords())
        src.begin_record()
        assert src.take(10) == b"ab"

    def test_crlf(self):
        src = Source.from_bytes(b"ab\r\ncd\r\n", NewlineRecords())
        src.begin_record()
        assert src.record_bytes() == b"ab"
        src.end_record()
        src.begin_record()
        assert src.record_bytes() == b"cd"

    def test_final_record_without_newline(self):
        src = Source.from_bytes(b"ab\ncd", NewlineRecords())
        src.begin_record()
        src.end_record()
        assert src.begin_record()
        assert src.record_bytes() == b"cd"
        src.end_record()
        assert not src.begin_record()

    def test_skip_to_eor(self):
        src = Source.from_bytes(b"abcdef\nxy\n", NewlineRecords())
        src.begin_record()
        src.take(2)
        assert src.skip_to_eor() == 4
        assert src.at_eor()

    def test_record_indices(self):
        src = Source.from_bytes(b"a\nb\nc\n", NewlineRecords())
        seen = []
        while src.begin_record():
            seen.append(src.record_idx)
            src.end_record()
        assert seen == [0, 1, 2]


class TestFixedWidthRecords:
    def test_fixed_records(self):
        src = Source.from_bytes(b"AAABBBCCC", FixedWidthRecords(3))
        out = []
        while src.begin_record():
            out.append(src.record_bytes())
            src.end_record()
        assert out == [b"AAA", b"BBB", b"CCC"]

    def test_short_final_record_surfaced(self):
        src = Source.from_bytes(b"AAAB", FixedWidthRecords(3))
        src.begin_record()
        src.end_record()
        assert src.begin_record()
        assert src.record_bytes() == b"B"

    def test_width_must_be_positive(self):
        with pytest.raises(ValueError):
            FixedWidthRecords(0)


class TestLengthPrefixedRecords:
    def test_roundtrip(self):
        disc = LengthPrefixedRecords(prefix=2, byteorder="big")
        payloads = [b"hello", b"", b"worlds"]
        data = b"".join(disc.header(p) + p for p in payloads)
        src = Source.from_bytes(data, disc)
        out = []
        while src.begin_record():
            out.append(src.record_bytes())
            src.end_record()
        assert out == payloads

    def test_inclusive_length(self):
        disc = LengthPrefixedRecords(prefix=4, byteorder="big", inclusive=True)
        payload = b"abc"
        data = disc.header(payload) + payload
        assert data[:4] == (7).to_bytes(4, "big")
        src = Source.from_bytes(data, disc)
        src.begin_record()
        assert src.record_bytes() == payload

    def test_bad_prefix_size(self):
        with pytest.raises(ValueError):
            LengthPrefixedRecords(prefix=3)


class TestNoRecords:
    def test_whole_source_is_one_record(self):
        src = Source.from_bytes(b"all of it", NoRecords())
        assert src.begin_record()
        assert src.record_bytes() == b"all of it"
        src.end_record()
        assert not src.begin_record()


class TestStreaming:
    """The Source must behave identically over a stream as over bytes."""

    def test_stream_matches_bytes(self):
        data = b"".join(f"record {i} with some padding\n".encode() for i in range(5000))
        from_bytes = []
        src = Source.from_bytes(data, NewlineRecords())
        while src.begin_record():
            from_bytes.append(src.record_bytes())
            src.end_record()
        from_stream = []
        src = Source(stream=io.BytesIO(data), discipline=NewlineRecords())
        while src.begin_record():
            from_stream.append(src.record_bytes())
            src.end_record()
        assert from_bytes == from_stream

    def test_buffer_is_trimmed(self):
        data = b"x" * 100 + b"\n"
        src = Source(stream=io.BytesIO(data * 10000), discipline=NewlineRecords())
        max_buf = 0
        while src.begin_record():
            src.end_record()
            max_buf = max(max_buf, len(src._buf))
        # Buffer must stay bounded (far below the ~1MB total).
        assert max_buf < 300_000

    def test_scan_across_chunk_boundary(self):
        # Terminator placed straddling the 64KiB chunk boundary.
        data = b"a" * (1 << 16) + b"|tail\n"
        src = Source(stream=io.BytesIO(data), discipline=NewlineRecords())
        src.begin_record()
        body = src.take_until(b"|")
        assert len(body) == 1 << 16


@given(st.lists(st.binary(max_size=40).filter(lambda b: b"\n" not in b and b"\r" not in b),
                max_size=20))
def test_newline_records_roundtrip(payloads):
    data = b"".join(p + b"\n" for p in payloads)
    src = Source.from_bytes(data, NewlineRecords())
    out = []
    while src.begin_record():
        out.append(src.record_bytes())
        src.end_record()
    assert out == payloads


class TestWindowedSource:
    """Sources opened at an aligned offset (the parallel engine's chunks)."""

    DATA = b"aa\nbbb\ncccc\nddddd\n"

    def test_bytes_window_reports_absolute_offsets(self):
        # Window starting at the 'bbb' record: positions stay absolute.
        src = Source(self.DATA[3:], discipline=NewlineRecords(), start=3)
        assert src.pos == 3
        assert src.begin_record()
        assert src.record_bytes() == b"bbb"

    def test_file_window(self, tmp_path):
        path = tmp_path / "w.dat"
        path.write_bytes(self.DATA)
        src = Source.from_file(str(path), NewlineRecords(), start=3, end=12)
        records = []
        with src:
            while src.begin_record():
                records.append(src.record_bytes())
                src.end_record()
        assert records == [b"bbb", b"cccc"]

    def test_window_end_is_eof(self, tmp_path):
        path = tmp_path / "w.dat"
        path.write_bytes(self.DATA)
        src = Source.from_file(str(path), NewlineRecords(), start=0, end=7)
        with src:
            src.begin_record()
            src.end_record()
            src.begin_record()
            assert src.record_bytes() == b"bbb"
            src.end_record()
            assert not src.begin_record()

    def test_windows_tile_to_whole_stream(self, tmp_path):
        path = tmp_path / "w.dat"
        path.write_bytes(self.DATA)
        whole = []
        with Source.from_file(str(path), NewlineRecords()) as src:
            while src.begin_record():
                whole.append(src.record_bytes())
                src.end_record()
        split = []
        for start, end in ((0, 7), (7, len(self.DATA))):
            with Source.from_file(str(path), NewlineRecords(),
                                  start=start, end=end) as src:
                while src.begin_record():
                    split.append(src.record_bytes())
                    src.end_record()
        assert split == whole


class TestFromStringEncoding:
    def test_latin1_is_byte_transparent(self):
        # Every code point 0-255 maps to the identical byte value.
        text = "".join(chr(i) for i in range(256))
        src = Source.from_string(text)
        assert src.take_rest() == bytes(range(256))

    def test_non_ascii_text(self):
        src = Source.from_string("café\n", NewlineRecords())
        src.begin_record()
        assert src.record_bytes() == b"caf\xe9"
