"""Cross-checks: user helper functions evaluated by the interpreter and
as compiled Python must agree — including statements, loops, recursion
and C division semantics (the compiled form is what generated parser
modules embed)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dsl.parser import parse_description
from repro.expr.eval import BUILTINS, Env, EvalError, call_function
from repro.expr.pycompile import compile_function
from repro.expr.runtime import cdiv, cmod, getmember

FUNCTIONS = """
    int clamp(int x, int lo, int hi) {
      if (x < lo) return lo;
      if (x > hi) return hi;
      return x;
    };

    int gcd(int a, int b) {
      while (b != 0) {
        int t = b;
        b = a % b;
        a = t;
      }
      return a;
    };

    int tri(int n) {
      int acc = 0;
      for (int i = 1; i <= n; i += 1) acc += i;
      return acc;
    };

    int collatz(int n) {
      int steps = 0;
      while (n > 1) {
        if (n % 2 == 0) n /= 2; else n = 3 * n + 1;
        steps += 1;
      }
      return steps;
    };

    int fib(int n) {
      if (n <= 1) return n;
      return fib(n - 1) + fib(n - 2);
    };

    int sign_div(int a, int b) {
      return a / b + a % b;
    };

    bool in_band(int x, int mid, int radius) {
      int lo = mid - radius;
      int hi = mid + radius;
      return lo <= x && x <= hi;
    };

    int poly(int x) {
      return ((3 * x + 1) * x - 7) * x + 2;
    };
"""


@pytest.fixture(scope="module")
def both():
    desc = parse_description(FUNCTIONS)
    fns = desc.functions()
    env = Env({}, funcs=fns)

    compiled_ns = {"_cdiv": cdiv, "_cmod": cmod, "_member": getmember}
    resolver = (lambda n: f"fn_{n}" if n in fns else
                (f"_B[{n!r}]" if n in BUILTINS else n))
    compiled_ns["_B"] = BUILTINS
    for fn in fns.values():
        exec(compile_function(fn, resolver, name_prefix="fn_"),  # noqa: S102
             compiled_ns)

    def interp(name, *args):
        return call_function(fns[name], list(args), env)

    def compiled(name, *args):
        return compiled_ns[f"fn_{name}"](*args)

    return interp, compiled


CASES = [
    ("clamp", [(-5, 0, 10), (5, 0, 10), (50, 0, 10), (0, 0, 0)]),
    ("gcd", [(12, 18), (17, 5), (0, 9), (100, 100)]),
    ("tri", [(0,), (1,), (10,), (100,)]),
    ("collatz", [(1,), (6,), (27,)]),
    ("fib", [(0,), (1,), (10,)]),
    ("sign_div", [(7, 2), (-7, 2), (7, -2), (-7, -2)]),
    ("in_band", [(5, 10, 3), (8, 10, 3), (13, 10, 3), (14, 10, 3)]),
    ("poly", [(0,), (3,), (-4,)]),
]


@pytest.mark.parametrize("name,arg_sets", CASES)
def test_interpreter_and_compiled_agree(both, name, arg_sets):
    interp, compiled = both
    for args in arg_sets:
        assert interp(name, *args) == compiled(name, *args), (name, args)


@settings(max_examples=100, deadline=None)
@given(a=st.integers(-50, 50), b=st.integers(-50, 50), c=st.integers(-50, 50))
def test_property_agreement_on_random_inputs(both, a, b, c):
    interp, compiled = both
    lo, hi = sorted((b, c))
    assert interp("clamp", a, lo, hi) == compiled("clamp", a, lo, hi)
    assert interp("in_band", a, b, abs(c)) == compiled("in_band", a, b, abs(c))
    assert interp("poly", a) == compiled("poly", a)
    if b != 0:
        assert interp("sign_div", a, b) == compiled("sign_div", a, b)
    assert interp("gcd", abs(a), abs(b)) == compiled("gcd", abs(a), abs(b))


def test_known_values(both):
    interp, _ = both
    assert interp("gcd", 12, 18) == 6
    assert interp("tri", 100) == 5050
    assert interp("collatz", 27) == 111
    assert interp("fib", 10) == 55
    # C semantics: -7/2 == -3 (trunc), -7%2 == -1.
    assert interp("sign_div", -7, 2) == -4
