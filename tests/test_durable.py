"""Durable runs: the record-boundary index and checkpoint/resume.

Three contracts under test:

1. **Index** — built as a side effect of any pass, O(1) seek to record
   N, scan-free parallel chunk planning, and *hard rejection* of any
   stale/torn/corrupt artifact (fall back to full scan, never wrong
   answers).
2. **Checkpoint/resume** — a run interrupted at an arbitrary point
   (injected crash or real SIGKILL) resumed with ``resume=True``
   produces accumulator reports, error accounting, and deterministic
   observe metrics identical to an uninterrupted run, across the
   serial, stream, and parallel paths and every gallery description.
3. **Corrupt-artifact battery** — truncated, bit-flipped, stale, and
   zero-length ``.padsidx``/``.padsckpt`` files are detected, counted
   in ``index.rejected``/``checkpoint.rejected``, and degrade to a
   clean full re-scan.
"""

import os
import random

import pytest

from repro import durable, gallery, observe
from repro.core.api import compile_description
from repro.core.io import LengthPrefixedRecords
from repro.faults import GALLERY_TARGETS, kill_resume_check
from repro.tools.datagen import generate_records

N_RECORDS = 600
CKPT_EVERY = 97  # deliberately not a divisor of N_RECORDS


def _gallery_file(tmp_path, name, n=N_RECORDS, seed=20050612):
    """A compiled gallery description plus a conforming data file."""
    by_name = {t[0]: t for t in GALLERY_TARGETS}
    _, text, rtype, ambient, discipline = by_name[name]
    desc = compile_description(text, ambient=ambient, discipline=discipline)
    rng = random.Random(seed)
    data = b"".join(generate_records(desc, rtype, n, rng))
    path = tmp_path / f"{name}.dat"
    path.write_bytes(data)
    return desc, str(path), rtype, data


def _crash_at(point):
    """Run ``fn`` with an injected hard crash after ``point`` units."""
    class _ctx:
        def __enter__(self):
            durable._CRASH_AFTER = point
        def __exit__(self, *exc):
            durable._CRASH_AFTER = None
    return _ctx()


def _reports(acc, tally):
    return (acc.full_report(), tally.records, tally.bad_records,
            tally.total_errors, dict(tally.by_code))


def _det_stats(obs):
    s = obs.stats(deterministic=True)
    # checkpoint.writes etc. legitimately differ between an interrupted
    # and an uninterrupted run, and the stream window's refill pattern
    # depends on where the resumed cursor re-entered the file.  Every
    # semantic metric — records, errors, latency counts, byte totals —
    # must be identical.
    s.pop("durable")
    s.pop("stream", None)
    return s


class TestIndex:
    def test_build_and_load_round_trip(self, tmp_path):
        desc, path, _rt, data = _gallery_file(tmp_path, "clf")
        idx, target = durable.build_index(desc, path, interval=50)
        assert target == path + durable.INDEX_SUFFIX
        assert idx.records == N_RECORDS
        assert idx.interval == 50
        assert idx.offsets[0] == 0
        assert idx.offsets == sorted(idx.offsets)
        assert len(idx.offsets) == 1 + N_RECORDS // 50
        assert idx.size == len(data)
        again = durable.load_index(path, desc.discipline)
        assert again is not None and again.offsets == idx.offsets

    def test_open_at_record_matches_scan(self, tmp_path):
        desc, path, _rt, _data = _gallery_file(tmp_path, "clf")
        idx, _ = durable.build_index(desc, path, interval=50)
        scan = desc.open_file(path)
        with scan:
            by_scan = {}
            while scan.begin_record():
                by_scan[scan.record_idx] = scan.record_bytes()
                scan.end_record()
        for n in (0, 1, 49, 50, 51, 123, N_RECORDS - 1):
            src = durable.open_at_record(desc, path, n, idx)
            assert src is not None
            assert src.begin_record()
            assert src.record_idx == n
            assert src.record_bytes() == by_scan[n]
            src.close()
        # Past the end: None, not garbage.
        assert durable.open_at_record(desc, path, N_RECORDS, idx) is None

    def test_seek_record_is_o1_bounded(self, tmp_path):
        desc, path, _rt, _data = _gallery_file(tmp_path, "clf")
        idx, _ = durable.build_index(desc, path, interval=50)
        offset, base = durable.seek_record(idx, 137)
        assert base == 100 and offset == idx.offsets[2]
        assert 137 - base < idx.interval

    def test_indexed_chunk_plan_tiles_the_file(self, tmp_path):
        desc, path, _rt, data = _gallery_file(tmp_path, "clf")
        idx, _ = durable.build_index(desc, path, interval=20)
        plan = durable.plan_chunks_indexed(idx, 4, min_chunk=1)
        assert plan is not None and len(plan) > 1
        assert plan[0][0] == 0 and plan[-1][1] == len(data)
        for (_s1, e1), (s2, _e2) in zip(plan, plan[1:]):
            assert e1 == s2  # contiguous, no gap or overlap
        for s, _e in plan[1:]:
            assert s in idx.offsets  # every cut is a sampled boundary
        # Parsing the chunks independently re-yields every record.
        total = 0
        for s, e in plan:
            from repro.core.io import Source
            src = Source.from_file(path, desc.discipline, start=s, end=e)
            with src:
                while src.begin_record():
                    src.end_record()
                    total += 1
        assert total == N_RECORDS

    def test_index_unlocks_parallel_for_length_prefixed(self, tmp_path):
        # LengthPrefixedRecords has no scannable boundary: the parallel
        # engine previously always degraded to serial.  A persistent
        # index makes the split possible — sampled offsets ARE record
        # starts.
        import pathlib
        from repro.parallel import _plan_windows
        lp = LengthPrefixedRecords()
        raw = b"".join(len(p).to_bytes(4, "big") + p
                       for p in (b"x" * 40, b"y" * 30, b"z" * 50) * 2000)
        lp_path = tmp_path / "tlv.bin"
        lp_path.write_bytes(raw)
        assert not lp.chunkable
        tlv = compile_description(
            'Psource Pstruct rec_t { Pstring_ME(:"[a-z]+":) body; };',
            ambient="binary", discipline=lp)
        assert _plan_windows(tlv, pathlib.Path(str(lp_path)), 2) is None
        durable.build_index(tlv, str(lp_path), interval=100)
        plan = _plan_windows(tlv, pathlib.Path(str(lp_path)), 2)
        assert plan is not None
        windows, jobs = plan
        assert len(windows) >= 2
        n = tlv.count_records_parallel(pathlib.Path(str(lp_path)), jobs=2)
        assert n == 6000

    def test_stream_pass_builds_index_as_side_effect(self, tmp_path):
        from repro.stream import count_records_stream, records_stream
        desc, path, rtype, _data = _gallery_file(tmp_path, "clf")
        n = count_records_stream(desc, path, index=50)
        idx = durable.load_index(path, desc.discipline)
        assert idx is not None and idx.records == n == N_RECORDS
        assert idx.interval == 50
        os.unlink(path + durable.INDEX_SUFFIX)
        # An abandoned iterator must NOT publish a partial index.
        it = records_stream(desc, path, rtype, index=True)
        next(it)
        it.close()
        assert durable.load_index(path, desc.discipline) is None

    def test_durable_run_builds_index_and_reuses_it(self, tmp_path):
        # Big enough that the parallel planner can actually split it
        # (files under MIN_CHUNK_BYTES always stay serial).
        desc, path, rtype, _data = _gallery_file(tmp_path, "clf", n=3000)
        with observe.observed() as obs:
            durable.accumulate_durable(desc, path, rtype,
                                       index_interval=50)
        assert obs.stats()["durable"]["index_built"] == 1
        idx = durable.load_index(path, desc.discipline)
        assert idx is not None and idx.records == 3000
        with observe.observed() as obs2:
            durable.count_records_durable(desc, path, jobs=2)
        assert obs2.stats()["durable"]["index_hits"] >= 1


def _flip_byte(path, at):
    blob = bytearray(open(path, "rb").read())
    blob[at] ^= 0x40
    open(path, "wb").write(bytes(blob))


class TestCorruptIndex:
    """Every damaged index is rejected, counted, and harmless."""

    @pytest.fixture()
    def built(self, tmp_path):
        desc, path, rtype, data = _gallery_file(tmp_path, "clf")
        durable.build_index(desc, path, interval=50)
        return desc, path, rtype, data

    def _assert_rejected(self, desc, path):
        with observe.observed() as obs:
            assert durable.load_index(path, desc.discipline) is None
            assert obs.stats()["durable"]["index_rejected"] == 1
        # ...and the engines still answer correctly via full scan.
        assert desc.count_records(desc.open_file(path)) == N_RECORDS

    def test_truncated(self, built):
        desc, path, _rt, _d = built
        idx_file = path + durable.INDEX_SUFFIX
        blob = open(idx_file, "rb").read()
        open(idx_file, "wb").write(blob[:len(blob) // 2])
        self._assert_rejected(desc, path)

    def test_missing_footer_torn_write(self, built):
        desc, path, _rt, _d = built
        idx_file = path + durable.INDEX_SUFFIX
        lines = open(idx_file, "rb").read().splitlines(keepends=True)
        open(idx_file, "wb").write(b"".join(lines[:-1]))
        self._assert_rejected(desc, path)

    def test_bit_flipped(self, built):
        desc, path, _rt, _d = built
        idx_file = path + durable.INDEX_SUFFIX
        _flip_byte(idx_file, os.path.getsize(idx_file) // 2)
        self._assert_rejected(desc, path)

    def test_zero_length(self, built):
        desc, path, _rt, _d = built
        open(path + durable.INDEX_SUFFIX, "wb").close()
        self._assert_rejected(desc, path)

    def test_stale_source_mutated(self, built):
        desc, path, _rt, _d = built
        with open(path, "ab") as handle:
            handle.write(b"trailing garbage\n")
        with observe.observed() as obs:
            assert durable.load_index(path, desc.discipline) is None
            assert obs.stats()["durable"]["index_rejected"] == 1

    def test_stale_source_prefix_rewritten(self, built):
        # Same size, same length — only content changed.  mtime alone
        # could miss this (utimes games); the prefix CRC cannot.
        desc, path, _rt, _d = built
        st = os.stat(path)
        _flip_byte(path, 10)
        os.utime(path, ns=(st.st_atime_ns, st.st_mtime_ns))
        assert durable.load_index(path, desc.discipline) is None

    def test_wrong_discipline(self, built):
        desc, path, _rt, _d = built
        assert durable.load_index(path, LengthPrefixedRecords()) is None

    def test_missing_is_silent(self, tmp_path):
        desc, path, _rt, _d = _gallery_file(tmp_path, "clf", n=5)
        with observe.observed() as obs:
            assert durable.load_index(path, desc.discipline) is None
            assert obs.stats()["durable"]["index_rejected"] == 0


class TestCorruptCheckpoint:
    """Every damaged checkpoint starts the run over — never a crash,
    never a skewed result."""

    def _interrupted(self, tmp_path):
        desc, path, rtype, _d = _gallery_file(tmp_path, "clf")
        ref = durable.accumulate_durable(desc, path, rtype, checkpoint=None,
                                         build_index=False)
        with _crash_at(300):
            with pytest.raises(durable._InjectedCrash):
                durable.accumulate_durable(desc, path, rtype,
                                           interval=CKPT_EVERY,
                                           build_index=False)
        ckpt = path + durable.CHECKPOINT_SUFFIX
        assert os.path.exists(ckpt)
        return desc, path, rtype, ref, ckpt

    def _assert_full_rerun(self, desc, path, rtype, ref, rejected=1):
        with observe.observed() as obs:
            acc, tally = durable.accumulate_durable(
                desc, path, rtype, interval=CKPT_EVERY, resume=True,
                build_index=False)
            s = obs.stats()["durable"]
            assert s["checkpoint_rejected"] == rejected
            assert s["checkpoint_resumes"] == 0
            assert s["records_skipped"] == 0
        assert _reports(acc, tally) == _reports(*ref)

    def test_truncated(self, tmp_path):
        desc, path, rtype, ref, ckpt = self._interrupted(tmp_path)
        blob = open(ckpt, "rb").read()
        open(ckpt, "wb").write(blob[:len(blob) // 2])
        self._assert_full_rerun(desc, path, rtype, ref)

    def test_bit_flipped(self, tmp_path):
        desc, path, rtype, ref, ckpt = self._interrupted(tmp_path)
        _flip_byte(ckpt, os.path.getsize(ckpt) // 2)
        self._assert_full_rerun(desc, path, rtype, ref)

    def test_zero_length(self, tmp_path):
        desc, path, rtype, ref, ckpt = self._interrupted(tmp_path)
        open(ckpt, "wb").close()
        self._assert_full_rerun(desc, path, rtype, ref)

    def test_stale_source(self, tmp_path):
        desc, path, rtype, ref, ckpt = self._interrupted(tmp_path)
        # The source shrank by one byte after the crash: every offset in
        # the checkpoint is now suspect.  Binding mismatch -> start over.
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[:-1])
        ref2 = durable.accumulate_durable(desc, path, rtype, checkpoint=None,
                                          build_index=False)
        self._assert_full_rerun(desc, path, rtype, ref2)

    def test_wrong_mode(self, tmp_path):
        desc, path, rtype, ref, ckpt = self._interrupted(tmp_path)
        with observe.observed() as obs:
            n = durable.count_records_durable(desc, path, interval=CKPT_EVERY,
                                              resume=True, build_index=False)
            assert obs.stats()["durable"]["checkpoint_rejected"] == 1
        assert n == N_RECORDS

    def test_missing_is_silent(self, tmp_path):
        desc, path, rtype, _d = _gallery_file(tmp_path, "clf", n=20)
        with observe.observed() as obs:
            durable.accumulate_durable(desc, path, rtype, resume=True,
                                       build_index=False)
            assert obs.stats()["durable"]["checkpoint_rejected"] == 0


SERIAL_ENGINES = ["serial", "stream"]


class TestCrashResumeDifferential:
    """Interrupt at an arbitrary record, resume, compare everything."""

    @pytest.mark.parametrize("name", [t[0] for t in GALLERY_TARGETS])
    @pytest.mark.parametrize("engine", SERIAL_ENGINES)
    def test_gallery_serial_and_stream(self, tmp_path, name, engine):
        desc, path, rtype, _d = _gallery_file(tmp_path, name)
        with observe.observed() as obs_ref:
            ref = durable.accumulate_durable(desc, path, rtype,
                                             checkpoint=None, engine=engine,
                                             build_index=False)
        crash_at = 257 if name != "netflow" else 1
        # The interrupted run observes too — that is what makes its
        # metrics part of the checkpoint and the resumed totals whole.
        with _crash_at(crash_at), observe.observed():
            try:
                durable.accumulate_durable(desc, path, rtype, engine=engine,
                                           interval=CKPT_EVERY,
                                           build_index=False)
            except durable._InjectedCrash:
                pass
        with observe.observed() as obs_res:
            out = durable.accumulate_durable(desc, path, rtype, engine=engine,
                                             interval=CKPT_EVERY, resume=True,
                                             build_index=False)
        assert _reports(*out) == _reports(*ref)
        assert _det_stats(obs_res) == _det_stats(obs_ref)
        assert not os.path.exists(path + durable.CHECKPOINT_SUFFIX)

    @pytest.mark.parametrize("crash_at", [1, 96, 97, 98, 599, 600])
    def test_every_interruption_point_class(self, tmp_path, crash_at):
        # Before the first checkpoint, exactly on one, just after one,
        # on the final record, and past the end (no crash at all).
        desc, path, rtype, _d = _gallery_file(tmp_path, "clf")
        ref = durable.accumulate_durable(desc, path, rtype, checkpoint=None,
                                         build_index=False)
        with _crash_at(crash_at):
            try:
                durable.accumulate_durable(desc, path, rtype,
                                           interval=CKPT_EVERY,
                                           build_index=False)
            except durable._InjectedCrash:
                pass
        out = durable.accumulate_durable(desc, path, rtype,
                                         interval=CKPT_EVERY, resume=True,
                                         build_index=False)
        assert _reports(*out) == _reports(*ref)

    def test_dirty_data_error_accounting_survives_resume(self, tmp_path):
        # Errors (bad records, per-code tallies, record-indexed
        # locations) must continue across the crash, not restart at 0.
        from repro.tools.datagen import ErrorInjector, generate_source
        by_name = {t[0]: t for t in GALLERY_TARGETS}
        _, text, rtype, ambient, discipline = by_name["clf"]
        desc = compile_description(text, ambient=ambient,
                                   discipline=discipline)
        rng = random.Random(99)
        data = generate_source(desc, rtype, N_RECORDS, rng,
                               ErrorInjector(0.2))
        path = tmp_path / "dirty.log"
        path.write_bytes(data)
        with observe.observed() as obs_ref:
            ref = durable.accumulate_durable(desc, str(path), rtype,
                                             checkpoint=None,
                                             build_index=False)
        assert ref[1].bad_records > 0  # the corruption bites
        with _crash_at(301), observe.observed():
            try:
                durable.accumulate_durable(desc, str(path), rtype,
                                           interval=CKPT_EVERY,
                                           build_index=False)
            except durable._InjectedCrash:
                pass
        with observe.observed() as obs_res:
            out = durable.accumulate_durable(desc, str(path), rtype,
                                             interval=CKPT_EVERY, resume=True,
                                             build_index=False)
        assert _reports(*out) == _reports(*ref)
        assert _det_stats(obs_res) == _det_stats(obs_ref)

    def test_records_durable_resume_yields_the_suffix(self, tmp_path):
        desc, path, rtype, _d = _gallery_file(tmp_path, "clf")
        whole = [rep for rep, _pd in
                 durable.records_durable(desc, path, rtype, checkpoint=None,
                                         build_index=False)]
        assert len(whole) == N_RECORDS
        count = 0
        with _crash_at(250):
            try:
                for _rep, _pd in durable.records_durable(
                        desc, path, rtype, interval=CKPT_EVERY,
                        build_index=False):
                    count += 1
            except durable._InjectedCrash:
                pass
        assert count == 250
        resumed = [rep for rep, _pd in
                   durable.records_durable(desc, path, rtype,
                                           interval=CKPT_EVERY, resume=True,
                                           build_index=False)]
        # The resumed iterator restarts at the last checkpoint (194 ==
        # 2*97 records were durably done) and replays only the suffix.
        assert resumed == whole[194:]

    def test_crash_with_index_building_still_completes_index(self, tmp_path):
        desc, path, rtype, _d = _gallery_file(tmp_path, "clf")
        with _crash_at(300):
            try:
                durable.accumulate_durable(desc, path, rtype,
                                           interval=CKPT_EVERY,
                                           index_interval=50)
            except durable._InjectedCrash:
                pass
        assert durable.load_index(path, desc.discipline) is None
        durable.accumulate_durable(desc, path, rtype, interval=CKPT_EVERY,
                                   resume=True, index_interval=50)
        idx = durable.load_index(path, desc.discipline)
        assert idx is not None and idx.records == N_RECORDS
        # The stitched-together offsets equal a one-shot build's.
        os.unlink(path + durable.INDEX_SUFFIX)
        one_shot, _ = durable.build_index(desc, path, interval=50)
        assert idx.offsets == one_shot.offsets


class TestParallelDurable:
    def test_parallel_matches_parallel_engine(self, tmp_path):
        import pathlib
        from repro.parallel import parallel_accumulate
        desc, path, rtype, _d = _gallery_file(tmp_path, "clf", n=3000)
        ref_acc, _h, ref_tally = parallel_accumulate(
            desc, pathlib.Path(path), rtype, jobs=2)
        acc, tally = durable.accumulate_durable(desc, path, rtype, jobs=2,
                                                build_index=False)
        assert _reports(acc, tally) == _reports(ref_acc, ref_tally)

    def test_parallel_crash_resume_skips_completed_chunks(self, tmp_path):
        desc, path, rtype, _d = _gallery_file(tmp_path, "clf", n=3000)
        ref = durable.accumulate_durable(desc, path, rtype, jobs=2,
                                         checkpoint=None, build_index=False)
        with _crash_at(1):  # parallel path: crash after chunk #1 reduces
            try:
                durable.accumulate_durable(desc, path, rtype, jobs=2,
                                           build_index=False)
            except durable._InjectedCrash:
                pass
        ckpt = durable._load_checkpoint(path + durable.CHECKPOINT_SUFFIX)
        assert ckpt is not None and ckpt["chunks_done"] == 1
        assert ckpt["windows"] is not None
        with observe.observed() as obs:
            out = durable.accumulate_durable(desc, path, rtype, jobs=2,
                                             resume=True, build_index=False)
            skipped = obs.stats()["durable"]["records_skipped"]
        assert skipped == ckpt["records_done"] > 0
        assert _reports(*out) == _reports(*ref)

    def test_parallel_count_crash_resume(self, tmp_path):
        desc, path, rtype, _d = _gallery_file(tmp_path, "clf", n=3000)
        with _crash_at(1):
            try:
                durable.count_records_durable(desc, path, jobs=2,
                                              build_index=False)
            except durable._InjectedCrash:
                pass
        n = durable.count_records_durable(desc, path, jobs=2, resume=True,
                                          build_index=False)
        assert n == 3000


@pytest.mark.timing
class TestKillResume:
    """A real fork + SIGKILL (process group, so pool workers die too)."""

    def test_sigkill_then_resume_matches_reference(self, tmp_path):
        desc, path, rtype, _d = _gallery_file(tmp_path, "clf", n=4000)
        detail = kill_resume_check(desc, path, rtype,
                                   rng=random.Random(7), interval=50)
        assert detail is None, detail


class TestCheckpointFileFormat:
    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        desc, path, rtype, _d = _gallery_file(tmp_path, "clf", n=50)
        durable.accumulate_durable(desc, path, rtype, interval=10)
        leftovers = [f for f in os.listdir(tmp_path) if ".tmp." in f]
        assert leftovers == []

    def test_checkpoint_none_never_touches_disk(self, tmp_path):
        desc, path, rtype, _d = _gallery_file(tmp_path, "clf", n=50)
        before = set(os.listdir(tmp_path))
        durable.accumulate_durable(desc, path, rtype, checkpoint=None,
                                   build_index=False)
        assert set(os.listdir(tmp_path)) == before

    def test_explicit_checkpoint_path(self, tmp_path):
        desc, path, rtype, _d = _gallery_file(tmp_path, "clf")
        alt = str(tmp_path / "elsewhere.ckpt")
        with _crash_at(200):
            try:
                durable.accumulate_durable(desc, path, rtype, checkpoint=alt,
                                           interval=CKPT_EVERY,
                                           build_index=False)
            except durable._InjectedCrash:
                pass
        assert os.path.exists(alt)
        ref = durable.accumulate_durable(desc, path, rtype, checkpoint=None,
                                         build_index=False)
        out = durable.accumulate_durable(desc, path, rtype, checkpoint=alt,
                                         interval=CKPT_EVERY, resume=True,
                                         build_index=False)
        assert _reports(*out) == _reports(*ref)
        assert not os.path.exists(alt)


class TestCLI:
    def _write_desc(self, tmp_path):
        p = tmp_path / "clf.pads"
        p.write_text(gallery.CLF)
        return str(p)

    def test_index_build_and_verify(self, tmp_path, capsys):
        from repro.tools.padsc import main
        desc_file = self._write_desc(tmp_path)
        _desc, path, _rt, _d = _gallery_file(tmp_path, "clf")
        assert main(["index", desc_file, path, "--interval", "50"]) == 0
        out = capsys.readouterr().out
        assert "600 records" in out
        assert main(["index", desc_file, path, "--verify"]) == 0
        _flip_byte(path + durable.INDEX_SUFFIX, 30)
        assert main(["index", desc_file, path, "--verify"]) == 1

    def test_checkpoint_resume_accum(self, tmp_path, capsys):
        from repro.tools.padsc import main
        desc_file = self._write_desc(tmp_path)
        desc, path, rtype, _d = _gallery_file(tmp_path, "clf")
        ref = durable.accumulate_durable(desc, path, rtype, checkpoint=None,
                                         build_index=False)
        assert main(["accum", desc_file, path, "--record", rtype,
                     "--checkpoint", "100"]) == 0
        full = capsys.readouterr()
        assert "600 records" in full.err
        assert ref[0].full_report(10) in full.out
        # Resume with no checkpoint on disk: clean full run, exit 0.
        assert main(["accum", desc_file, path, "--record", rtype,
                     "--resume"]) == 0

    def test_count_checkpoint(self, tmp_path, capsys):
        from repro.tools.padsc import main
        desc_file = self._write_desc(tmp_path)
        _desc, path, _rt, _d = _gallery_file(tmp_path, "clf")
        assert main(["count", desc_file, path, "--checkpoint"]) == 0
        assert capsys.readouterr().out.strip() == "600"

    def test_usage_errors_exit_2(self, tmp_path, capsys):
        from repro.tools.padsc import main
        desc_file = self._write_desc(tmp_path)
        _desc, path, _rt, _d = _gallery_file(tmp_path, "clf")
        assert main(["accum", desc_file, "-", "--record", "entry_t",
                     "--checkpoint"]) == 2
        assert main(["count", desc_file, path, "--checkpoint",
                     "--engine", "batch"]) == 2
        assert main(["accum", desc_file, path, "--record", "entry_t",
                     "--checkpoint", "--follow", "0.1"]) == 2
        assert main(["index", desc_file, "-"]) == 2

    def test_stats_surface_durable_metrics(self, tmp_path, capsys):
        from repro.tools.padsc import main
        desc_file = self._write_desc(tmp_path)
        _desc, path, _rt, _d = _gallery_file(tmp_path, "clf")
        assert main(["count", desc_file, path, "--checkpoint", "100",
                     "--stats"]) == 0
        err = capsys.readouterr().err
        assert "durable:" in err and "ckpt-writes: 6" in err
