"""Generative property tests for the DSL front-end.

Hypothesis builds random (small, well-formed) descriptions as ASTs; we
pretty-print them, reparse, and require a pretty-print fixpoint plus
semantic equivalence (same parses over generated data).  This fuzzes the
lexer/parser/printer triangle far beyond the hand-written cases.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import compile_description
from repro.dsl.parser import parse_description
from repro.dsl.pprint import pp_description

from .test_codegen import pd_summary

# -- strategies for random descriptions --------------------------------------

import keyword as _kw

from repro.dsl.lexer import KEYWORDS
from repro.expr.eval import BUILTINS

_RESERVED = (KEYWORDS | set(BUILTINS) | {"elts", "length"}
             | set(_kw.kwlist) | set(_kw.softkwlist))
_names = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True).filter(
    lambda n: n not in _RESERVED)
_field_names = st.lists(_names, min_size=1, max_size=4, unique=True)

_base_types = st.sampled_from([
    "Puint8", "Puint16", "Puint32", "Pint32",
    "Pstring(:'|':)", "Pstring_FW(:3:)", "Pchar", "Pzip", "Pfloat",
])

_literal_chars = st.sampled_from([";", ":", "|", "#", "~", "@"])


@st.composite
def struct_source(draw):
    """A random Precord Pstruct over base types with char literals."""
    fields = draw(_field_names)
    sep = draw(_literal_chars)
    lines = ["Precord Pstruct row_t {"]
    for i, name in enumerate(fields):
        base = draw(_base_types)
        if "Pstring(" in base:
            base = f"Pstring(:'{sep}':)"
        constraint = ""
        if base in ("Puint8", "Puint16", "Puint32") and draw(st.booleans()):
            bound = draw(st.integers(1, 200))
            constraint = f" : {name} < {bound}"
        lines.append(f"  {base} {name}{constraint};")
        if i < len(fields) - 1:
            lines.append(f"  '{sep}';")
    lines.append("};")
    return "\n".join(lines)


@st.composite
def union_source(draw):
    branches = draw(_field_names)
    kinds = ["Puint32", "Pzip", "Pstring(:'!':)"]
    lines = ["Punion u_t {"]
    for i, name in enumerate(branches):
        lines.append(f"  {kinds[i % len(kinds)]} {name};")
    lines.append("};")
    lines.append("Precord Pstruct row_t { u_t v; '!'; Puint8 n; };")
    return "\n".join(lines)


@st.composite
def array_source(draw):
    sep = draw(st.sampled_from([",", ";", "+"]))
    lines = [
        "Parray xs_t {",
        f"  Puint16[] : Psep('{sep}') && Pterm(Peor);",
        "};" if not draw(st.booleans()) else
        "} Pwhere { Pforall (i Pin [0..length-2] : elts[i] <= elts[i+1]) };",
        "Precord Pstruct row_t { Puint8 head; ':'; xs_t xs; };",
    ]
    return "\n".join(lines)


_descriptions = st.one_of(struct_source(), union_source(), array_source())


@settings(max_examples=60, deadline=None)
@given(text=_descriptions)
def test_pretty_print_is_fixpoint(text):
    desc = parse_description(text)
    once = pp_description(desc)
    twice = pp_description(parse_description(once))
    assert once == twice


@settings(max_examples=40, deadline=None)
@given(text=_descriptions, seed=st.integers(0, 10**6))
def test_reparsed_description_is_semantically_identical(text, seed):
    original = compile_description(text)
    printed = pp_description(parse_description(text))
    reparsed = compile_description(printed)
    rng = random.Random(seed)
    rep = original.generate("row_t", rng)
    data = original.write(rep, "row_t")
    ra, pa = original.parse(data, "row_t")
    rb, pb = reparsed.parse(data, "row_t")
    assert pd_summary(pa) == pd_summary(pb)
    assert ra == rb == rep


@settings(max_examples=40, deadline=None)
@given(text=_descriptions, seed=st.integers(0, 10**6))
def test_generated_module_agrees_on_random_descriptions(text, seed):
    """Codegen equivalence, fuzzed at the description level too."""
    from repro.codegen import compile_generated
    interp = compile_description(text)
    gen = compile_generated(text)
    rng = random.Random(seed)
    rep = interp.generate("row_t", rng)
    data = bytearray(interp.write(rep, "row_t"))
    if len(data) > 2 and seed % 3 == 0:
        data[seed % (len(data) - 1)] = 33 + (seed % 90)  # one mutation
    blob = bytes(data)
    ri, pi = interp.parse(blob, "row_t")
    rg, pg = gen.parse(blob, "row_t")
    assert pd_summary(pi) == pd_summary(pg), blob
    assert ri == rg
