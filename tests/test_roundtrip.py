"""Round-trip property tests over every shipped description.

The invariants (DESIGN.md §6):

* error-free data:  write(parse(x)) == x,
* in-memory values: parse(write(r)) == r with a clean descriptor,
* record-at-a-time parsing ≡ whole-source parsing,
* the generated module writes byte-identical output to the interpreter.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import compile_description, gallery
from repro.codegen import compile_generated

from .test_codegen import pd_summary

GALLERY = {
    "clf": ("entry_t", gallery.load_clf),
    "sirius": ("entry_t", gallery.load_sirius),
    "calldetail": ("call_t", gallery.load_call_detail),
    "regulus": ("util_t", gallery.load_regulus),
}


@pytest.fixture(scope="module")
def descriptions():
    return {name: (record, loader())
            for name, (record, loader) in GALLERY.items()}


@settings(max_examples=30, deadline=None)
@given(name=st.sampled_from(sorted(GALLERY)), seed=st.integers(0, 10**6))
def test_rep_write_parse_roundtrip(descriptions, name, seed):
    record, desc = descriptions[name]
    rng = random.Random(seed)
    rep = desc.generate(record, rng)
    data = desc.write(rep, record)
    back, pd = desc.parse(data, record)
    assert pd.nerr == 0, (name, data)
    assert back == rep, (name, data)


@settings(max_examples=30, deadline=None)
@given(name=st.sampled_from(sorted(GALLERY)), seed=st.integers(0, 10**6))
def test_data_parse_write_roundtrip(descriptions, name, seed):
    record, desc = descriptions[name]
    rng = random.Random(seed)
    data = b"".join(desc.write(desc.generate(record, rng), record)
                    for _ in range(3))
    reps = [rep for rep, pd in desc.records(data, record)]
    rebuilt = b"".join(desc.write(rep, record) for rep in reps)
    assert rebuilt == data, name


@settings(max_examples=15, deadline=None)
@given(name=st.sampled_from(["clf", "sirius", "regulus"]),
       seed=st.integers(0, 10**6))
def test_record_at_a_time_equals_whole_source(descriptions, name, seed):
    record, desc = descriptions[name]
    rng = random.Random(seed)
    data = b"".join(desc.write(desc.generate(record, rng), record)
                    for _ in range(4))
    one_at_a_time = [rep for rep, _ in desc.records(data, record)]
    # The whole-source type is an array (or struct) over the records.
    whole, pd = desc.parse(data) if name != "sirius" else (None, None)
    if name == "clf":
        assert whole == one_at_a_time
    elif name == "regulus":
        assert whole == one_at_a_time


@pytest.fixture(scope="module")
def generated():
    return {
        "clf": compile_generated(gallery.CLF),
        "sirius": compile_generated(gallery.SIRIUS),
        "regulus": compile_generated(gallery.REGULUS),
    }


@settings(max_examples=25, deadline=None)
@given(name=st.sampled_from(["clf", "sirius", "regulus"]),
       seed=st.integers(0, 10**6))
def test_generated_write_matches_interpreter(descriptions, generated, name, seed):
    record, desc = descriptions[name]
    gen = generated[name]
    rng = random.Random(seed)
    rep = desc.generate(record, rng)
    assert gen.write(rep, record) == desc.write(rep, record)
    rg, pg = gen.parse(desc.write(rep, record), record)
    assert pg.nerr == 0 and rg == rep
