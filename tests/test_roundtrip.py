"""Round-trip property tests over every shipped description.

The invariants (DESIGN.md §6):

* error-free data:  write(parse(x)) == x,
* in-memory values: parse(write(r)) == r with a clean descriptor,
* record-at-a-time parsing ≡ whole-source parsing,
* the generated module writes byte-identical output to the interpreter.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import compile_description, gallery
from repro.codegen import compile_generated

from .test_codegen import pd_summary

GALLERY = {
    "clf": ("entry_t", gallery.load_clf),
    "sirius": ("entry_t", gallery.load_sirius),
    "calldetail": ("call_t", gallery.load_call_detail),
    "regulus": ("util_t", gallery.load_regulus),
}


@pytest.fixture(scope="module")
def descriptions():
    return {name: (record, loader())
            for name, (record, loader) in GALLERY.items()}


@settings(max_examples=30, deadline=None)
@given(name=st.sampled_from(sorted(GALLERY)), seed=st.integers(0, 10**6))
def test_rep_write_parse_roundtrip(descriptions, name, seed):
    record, desc = descriptions[name]
    rng = random.Random(seed)
    rep = desc.generate(record, rng)
    data = desc.write(rep, record)
    back, pd = desc.parse(data, record)
    assert pd.nerr == 0, (name, data)
    assert back == rep, (name, data)


@settings(max_examples=30, deadline=None)
@given(name=st.sampled_from(sorted(GALLERY)), seed=st.integers(0, 10**6))
def test_data_parse_write_roundtrip(descriptions, name, seed):
    record, desc = descriptions[name]
    rng = random.Random(seed)
    data = b"".join(desc.write(desc.generate(record, rng), record)
                    for _ in range(3))
    reps = [rep for rep, pd in desc.records(data, record)]
    rebuilt = b"".join(desc.write(rep, record) for rep in reps)
    assert rebuilt == data, name


@settings(max_examples=15, deadline=None)
@given(name=st.sampled_from(["clf", "sirius", "regulus"]),
       seed=st.integers(0, 10**6))
def test_record_at_a_time_equals_whole_source(descriptions, name, seed):
    record, desc = descriptions[name]
    rng = random.Random(seed)
    data = b"".join(desc.write(desc.generate(record, rng), record)
                    for _ in range(4))
    one_at_a_time = [rep for rep, _ in desc.records(data, record)]
    # The whole-source type is an array (or struct) over the records.
    whole, pd = desc.parse(data) if name != "sirius" else (None, None)
    if name == "clf":
        assert whole == one_at_a_time
    elif name == "regulus":
        assert whole == one_at_a_time


@pytest.fixture(scope="module")
def generated():
    return {
        "clf": compile_generated(gallery.CLF),
        "sirius": compile_generated(gallery.SIRIUS),
        "regulus": compile_generated(gallery.REGULUS),
    }


@settings(max_examples=25, deadline=None)
@given(name=st.sampled_from(["clf", "sirius", "regulus"]),
       seed=st.integers(0, 10**6))
def test_generated_write_matches_interpreter(descriptions, generated, name, seed):
    record, desc = descriptions[name]
    gen = generated[name]
    rng = random.Random(seed)
    rep = desc.generate(record, rng)
    assert gen.write(rep, record) == desc.write(rep, record)
    rg, pg = gen.parse(desc.write(rep, record), record)
    assert pg.nerr == 0 and rg == rep


class TestLatin1ByteTransparency:
    """Bytes >127 must survive every path unchanged: the runtime is
    byte-transparent (latin-1: bytes 0-255 <-> code points 0-255), so no
    stage may re-encode text as UTF-8.  Regression for the generated
    ``*_fmt2io`` / ``*_write_xml_2io`` wrappers, which used to."""

    DESC = """
Precord Pstruct entry_t {
  Pstring(:'|':) name;
  '|';
  Puint32 n;
};
Psource Parray src_t { entry_t[]; };
"""
    DATA = b"caf\xe9|7\nna\xefve|9\n"  # 'café', 'naïve' in latin-1

    @pytest.fixture(scope="class")
    def interp(self):
        return compile_description(self.DESC)

    @pytest.fixture(scope="class")
    def gen(self):
        return compile_generated(self.DESC)

    def test_from_string_is_byte_transparent(self, interp):
        from repro.core.io import Source
        text = self.DATA.decode("latin-1")
        src = Source.from_string(text, interp.discipline)
        out = []
        for rep, pd in interp.records(src, "entry_t"):
            assert pd.nerr == 0
            out.append(interp.write(rep, "entry_t"))
        # Precord writes include the record terminator.
        assert b"".join(out) == self.DATA

    @pytest.mark.parametrize("engine", ["interp", "gen"])
    def test_parse_write_roundtrip_high_bytes(self, engine, request):
        d = request.getfixturevalue(engine)
        reps = [rep for rep, pd in d.records(self.DATA, "entry_t")]
        assert [r.name for r in reps] == ["caf\xe9", "na\xefve"]
        written = b"".join(d.write(r, "entry_t") for r in reps)
        assert written == self.DATA

    def test_fmt_output_stays_latin1(self, interp, gen):
        from repro.tools.fmt import format_records
        lines = list(format_records(interp, self.DATA, "entry_t",
                                    delims=["|"]))
        assert lines[0].split("|")[0] == "caf\xe9"
        # The generated module's fmt2io twin must emit the same bytes.
        import io as _io
        rep, _ = gen.parse(self.DATA.split(b"\n", 1)[0], "entry_t")
        buf = _io.BytesIO()
        gen.module.entry_t_fmt2io(buf, rep, delims=("|",))
        assert buf.getvalue() == lines[0].encode("latin-1")
        assert b"caf\xe9" in buf.getvalue()         # one byte, not UTF-8
        assert b"caf\xc3\xa9" not in buf.getvalue()  # the old double-encode

    def test_xml_output_stays_latin1(self, interp, gen):
        from repro.tools.xml_out import to_xml
        rep, pd = interp.parse(self.DATA.split(b"\n", 1)[0], "entry_t")
        text = to_xml(interp.node("entry_t"), rep, pd, "entry", 0)
        assert "caf\xe9" in text
        import io as _io
        grep, _ = gen.parse(self.DATA.split(b"\n", 1)[0], "entry_t")
        buf = _io.BytesIO()
        gen.module.entry_t_write_xml_2io(buf, grep, tag="entry")
        assert buf.getvalue() == text.encode("latin-1")
        assert b"caf\xc3\xa9" not in buf.getvalue()

    def test_transparent_encode_mixes_byte_and_unicode_strings(self):
        """Pu_string fields decode real UTF-8, so their code points >255
        must re-encode as UTF-8 while byte-string text stays latin-1 —
        in the same output stream."""
        from repro.core.io import transparent_encode
        assert transparent_encode("caf\xe9") == b"caf\xe9"
        assert transparent_encode("日本") == b"\xe6\x97\xa5\xe6\x9c\xac"
        assert (transparent_encode("caf\xe9|日本")
                == b"caf\xe9|\xe6\x97\xa5\xe6\x9c\xac")

    def test_u_string_2io_writers_roundtrip_utf8(self):
        gen = compile_generated("""
Precord Pstruct entry_t {
  Pu_string(:'|':) name;
  '|';
  Puint32 n;
};
""")
        data = "日本|7\n".encode("utf-8")
        rep, pd = gen.parse(data.rstrip(b"\n"), "entry_t")
        assert pd.nerr == 0 and rep.name == "日本"
        import io as _io
        buf = _io.BytesIO()
        gen.module.entry_t_fmt2io(buf, rep, delims=("|",))
        assert buf.getvalue() == "日本|7".encode("utf-8")
        buf = _io.BytesIO()
        gen.module.entry_t_write_xml_2io(buf, rep, pd, tag="entry")
        assert "日本".encode("utf-8") in buf.getvalue()
