"""Tests for XML conversion and XML Schema generation (paper Section 5.3.2)."""

import xml.dom.minidom as minidom
import xml.etree.ElementTree as ET

import pytest

from repro import compile_description, gallery
from repro.tools.xml_out import to_xml, xml_records
from repro.tools.xsd import schema_for_description, schema_for_type


def parse_xml(text: str) -> ET.Element:
    return ET.fromstring(text)


class TestXmlOutput:
    def test_well_formed(self, sirius):
        rep, pd = sirius.parse(gallery.SIRIUS_SAMPLE)
        xml = to_xml(sirius.node("out_sum"), rep, pd, "sirius")
        minidom.parseString(xml)  # raises on malformed output

    def test_struct_fields_become_elements(self, sirius):
        rep, pd = sirius.parse(gallery.SIRIUS_SAMPLE)
        root = parse_xml(to_xml(sirius.node("out_sum"), rep, pd, "sirius"))
        assert root.find("h/tstamp").text == "1005022800"
        first = root.find("es/elt/header")
        assert first.find("order_num").text == "9152"
        assert first.find("zip_code").text == "07988"

    def test_union_wraps_branch(self, sirius):
        rep, pd = sirius.parse(gallery.SIRIUS_SAMPLE)
        root = parse_xml(to_xml(sirius.node("out_sum"), rep, pd, "sirius"))
        ramp = root.find("es/elt/header/ramp")
        assert ramp.find("genRamp/id").text == "152272"

    def test_opt_none_is_empty_element(self, sirius):
        rep, pd = sirius.parse(gallery.SIRIUS_SAMPLE)
        root = parse_xml(to_xml(sirius.node("out_sum"), rep, pd, "sirius"))
        none = root.find("es/elt/header/nlp_service_tn")
        assert none.text is None and len(none) == 0

    def test_array_has_elts_and_length(self, sirius):
        rep, pd = sirius.parse(gallery.SIRIUS_SAMPLE)
        root = parse_xml(to_xml(sirius.node("out_sum"), rep, pd, "sirius"))
        events = root.findall("es/elt")[1].find("events")
        assert len(events.findall("elt")) == 2
        assert events.find("length").text == "2"

    def test_pd_embedded_only_for_buggy_data(self, sirius):
        clean_xml = to_xml(sirius.node("out_sum"),
                           *reversed(list(sirius.parse(gallery.SIRIUS_SAMPLE))[::-1]))
        rep, pd = sirius.parse(gallery.SIRIUS_SAMPLE)
        clean_xml = to_xml(sirius.node("out_sum"), rep, pd, "sirius")
        assert "<pd>" not in clean_xml

        bad = gallery.SIRIUS_SAMPLE.replace("|10|1000295291", "|10|te1000295291")
        rep, pd = sirius.parse(bad)
        buggy_xml = to_xml(sirius.node("out_sum"), rep, pd, "sirius")
        assert "<pd>" in buggy_xml
        root = parse_xml(buggy_xml)
        pds = root.findall(".//pd")
        assert pds, "expected embedded parse descriptors"
        assert any(p.find("errCode") is not None and
                   p.find("errCode").text != "NO_ERR" for p in pds)

    def test_escaping(self):
        d = compile_description("Precord Pstruct r { Pstring_any s; };")
        rep, pd = d.parse(b"a<b>&c\n", "r")
        xml = to_xml(d.node("r"), rep, pd)
        assert "a&lt;b&gt;&amp;c" in xml

    def test_xml_records_stream(self, clf):
        chunks = list(xml_records(clf, gallery.CLF_SAMPLE, "entry_t"))
        doc = "\n".join(chunks)
        root = parse_xml(doc)
        assert len(root.findall("entry_t")) == 2
        assert root.findall("entry_t")[0].find("response").text == "200"


class TestSchema:
    def test_event_seq_fragment_matches_paper(self, sirius):
        """The paper prints the eventSeq complexTypes; check the structure
        element-for-element."""
        frag = schema_for_type("eventSeq", sirius.node("eventSeq"))
        # Wrap to parse (xs: prefix needs a namespace declaration).
        wrapped = ('<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">'
                   + frag + "</xs:schema>")
        root = parse_xml(wrapped)
        ns = {"xs": "http://www.w3.org/2001/XMLSchema"}
        pd_type = root.find('xs:complexType[@name="eventSeq_pd"]', ns)
        names = [e.get("name") for e in pd_type.findall(".//xs:element", ns)]
        assert names == ["pstate", "nerr", "errCode", "loc",
                         "neerr", "firstError", "elt"]
        val_type = root.find('xs:complexType[@name="eventSeq"]', ns)
        names = [e.get("name") for e in val_type.findall(".//xs:element", ns)]
        assert names == ["elt", "length", "pd"]
        elt = val_type.find('.//xs:element[@name="elt"]', ns)
        assert elt.get("maxOccurs") == "unbounded"

    def test_struct_schema(self, clf):
        frag = schema_for_type("entry_t", clf.node("entry_t"))
        assert '<xs:element name="client" type="client_t"/>' in frag
        assert '"entry_t_pd"' in frag

    def test_union_schema_is_choice(self, clf):
        frag = schema_for_type("client_t", clf.node("client_t"))
        assert "<xs:choice>" in frag
        assert '<xs:element name="ip"' in frag

    def test_enum_schema_is_restriction(self, clf):
        frag = schema_for_type("method_t", clf.node("method_t"))
        assert '<xs:enumeration value="GET"/>' in frag
        assert '<xs:enumeration value="UNLINK"/>' in frag

    def test_whole_description_schema(self, sirius):
        schema = schema_for_description(sirius)
        for tname in sirius.type_names:
            assert f'name="{tname}"' in schema
