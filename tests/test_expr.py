"""Tests for the embedded expression language.

Covers the interpreter, the Python compiler, and — crucially — their
agreement on randomly generated expressions (the code generator relies on
the two implementations being semantically identical).
"""

import pytest
from hypothesis import given, strategies as st

from repro.expr import ast as E
from repro.expr.eval import BUILTINS, Env, EvalError, call_function, eval_expr
from repro.expr.pycompile import compile_expr, compile_function
from repro.expr.runtime import cdiv, cmod, getmember
from repro.dsl.parser import parse_description


def parse_expr(text):
    desc = parse_description(f"Pstruct p {{ Puint8 x : {text}; }};")
    return desc.decls[0].items[0].constraint


def ev(text, **vars):
    return eval_expr(parse_expr(text), Env(dict(vars)))


class TestInterpreter:
    def test_arithmetic(self):
        assert ev("1 + 2 * 3") == 7
        assert ev("(1 + 2) * 3") == 9
        assert ev("10 - 4 - 3") == 3

    def test_c_division_truncates_toward_zero(self):
        assert ev("7 / 2") == 3
        assert ev("-7 / 2") == -3
        assert ev("7 / -2") == -3

    def test_c_modulo_sign_follows_dividend(self):
        assert ev("7 % 3") == 1
        assert ev("-7 % 3") == -1

    def test_division_by_zero_is_eval_error(self):
        with pytest.raises(EvalError):
            ev("1 / 0")
        with pytest.raises(EvalError):
            ev("1 % 0")

    def test_comparisons(self):
        assert ev("100 <= x && x < 600", x=200) is True
        assert ev("100 <= x && x < 600", x=600) is False

    def test_short_circuit(self):
        # The right operand would divide by zero; && must not evaluate it.
        assert ev("false && (1 / 0 == 1)") is False
        assert ev("true || (1 / 0 == 1)") is True

    def test_ternary(self):
        assert ev("x > 0 ? 1 : -1", x=5) == 1
        assert ev("x > 0 ? 1 : -1", x=-5) == -1

    def test_bitwise(self):
        assert ev("(5 & 3) | (1 << 4)") == 17
        assert ev("~0") == -1
        assert ev("6 ^ 3") == 5

    def test_char_is_string(self):
        assert ev("x == '-'", x="-") is True

    def test_member_on_dict(self):
        assert ev("x.a + x.b", x={"a": 1, "b": 2}) == 3

    def test_length_member_on_list(self):
        assert ev("x.length", x=[1, 2, 3]) == 3

    def test_index(self):
        assert ev("x[1]", x=[10, 20]) == 20

    def test_unbound_name(self):
        with pytest.raises(EvalError):
            ev("nosuch + 1")

    def test_forall(self):
        assert ev("Pforall (i Pin [0..2] : x[i] <= x[i+1])", x=[1, 2, 3, 4]) is True
        assert ev("Pforall (i Pin [0..2] : x[i] <= x[i+1])", x=[1, 5, 3, 4]) is False

    def test_forall_empty_range_is_true(self):
        assert ev("Pforall (i Pin [0..-1] : false)") is True

    def test_exists(self):
        assert ev("Pexists (i Pin [0..3] : x[i] == 9)", x=[1, 9, 3, 4]) is True
        assert ev("Pexists (i Pin [0..3] : x[i] == 9)", x=[1, 2, 3, 4]) is False

    def test_builtins(self):
        assert ev("strlen(x)", x="hello") == 5
        assert ev("substr(x, 1, 3)", x="hello") == "ell"
        assert ev("tolower(x)", x="ABC") == "abc"
        assert ev("startswith(x, \"no_ii\")", x="no_ii123") is True


class TestFunctions:
    def make(self, text):
        desc = parse_description(text)
        return desc.functions()

    def test_chk_version_shape(self):
        fns = self.make("""
          bool chkVersion(int major, int minor, string m) {
            if ((major == 1) && (minor == 1)) return true;
            if ((m == "LINK") || (m == "UNLINK")) return false;
            return true;
          };
        """)
        env = Env({}, funcs=fns)
        fn = fns["chkVersion"]
        assert call_function(fn, [1, 1, "LINK"], env) is True
        assert call_function(fn, [1, 0, "LINK"], env) is False
        assert call_function(fn, [1, 0, "GET"], env) is True

    def test_recursion(self):
        fns = self.make("""
          int fact(int n) {
            if (n <= 1) return 1;
            return n * fact(n - 1);
          };
        """)
        env = Env({}, funcs=fns)
        assert call_function(fns["fact"], [5], env) == 120

    def test_loops_and_locals(self):
        fns = self.make("""
          int sumTo(int n) {
            int acc = 0;
            int i = 0;
            while (i <= n) { acc += i; i += 1; }
            return acc;
          };
        """)
        env = Env({}, funcs=fns)
        assert call_function(fns["sumTo"], [10], env) == 55

    def test_for_loop(self):
        fns = self.make("""
          int squares(int n) {
            int acc = 0;
            for (int i = 1; i <= n; i += 1) acc += i * i;
            return acc;
          };
        """)
        env = Env({}, funcs=fns)
        assert call_function(fns["squares"], [3], env) == 14

    def test_wrong_arity(self):
        fns = self.make("bool f(int a) { return true; };")
        with pytest.raises(EvalError):
            call_function(fns["f"], [1, 2], Env({}, funcs=fns))

    def test_globals_visible_not_caller_locals(self):
        fns = self.make("int f() { return g + 1; };")
        root = Env({"g": 41}, funcs=fns)
        caller = root.child({"local_only": 5})
        assert call_function(fns["f"], [], caller) == 42
        fns2 = self.make("int f() { return local_only; };")
        caller2 = Env({"g": 1}, funcs=fns2).child({"local_only": 5})
        with pytest.raises(EvalError):
            call_function(fns2["f"], [], caller2)


class TestCompiler:
    def run_compiled(self, text, **vars):
        expr = parse_expr(text)
        code = compile_expr(expr)
        ns = {"_cdiv": cdiv, "_cmod": cmod, "_member": getmember, **BUILTINS, **vars}
        return eval(code, ns)  # noqa: S307 - test-controlled input

    @pytest.mark.parametrize("text,vars,expected", [
        ("1 + 2 * 3", {}, 7),
        ("-7 / 2", {}, -3),
        ("-7 % 3", {}, -1),
        ("x > 0 ? 1 : -1", {"x": 3}, 1),
        ("100 <= x && x < 600", {"x": 42}, False),
        ("x == '-'", {"x": "-"}, True),
        ("x[0] + x.length", {"x": [5, 6]}, 7),
        ("Pforall (i Pin [0..2] : x[i] < x[i+1])", {"x": [1, 2, 3, 4]}, True),
        ("Pexists (i Pin [0..2] : x[i] == 2)", {"x": [1, 2, 3]}, True),
        ("strlen(x)", {"x": "abcd"}, 4),
    ])
    def test_compiled_matches_expected(self, text, vars, expected):
        assert self.run_compiled(text, **vars) == expected

    def test_compiled_function(self):
        desc = parse_description("""
          int clamp(int x, int lo, int hi) {
            if (x < lo) return lo;
            if (x > hi) return hi;
            return x;
          };
        """)
        fn = desc.functions()["clamp"]
        src = compile_function(fn)
        ns = {"_cdiv": cdiv, "_cmod": cmod, "_member": getmember}
        exec(src, ns)  # noqa: S102 - test-controlled input
        assert ns["clamp"](5, 0, 3) == 3
        assert ns["clamp"](-5, 0, 3) == 0
        assert ns["clamp"](2, 0, 3) == 2

    def test_resolver_maps_names(self):
        expr = parse_expr("FOO == x")
        code = compile_expr(expr, lambda n: {"FOO": "'foo'"}.get(n, n))
        assert eval(code, {"x": "foo"}) is True  # noqa: S307


# ---------------------------------------------------------------------------
# Property: interpreter and compiler agree on random integer expressions.
# ---------------------------------------------------------------------------

_int_expr = st.deferred(lambda: st.one_of(
    st.integers(-50, 50).map(E.IntLit),
    st.sampled_from(["a", "b"]).map(E.Name),
    st.tuples(st.sampled_from(["+", "-", "*", "/", "%"]), _int_expr, _int_expr)
      .map(lambda t: E.Binary(t[0], t[1], t[2])),
    st.tuples(_bool_expr, _int_expr, _int_expr)
      .map(lambda t: E.Ternary(t[0], t[1], t[2])),
))

_bool_expr = st.deferred(lambda: st.one_of(
    st.booleans().map(E.BoolLit),
    st.tuples(st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
              _int_expr, _int_expr).map(lambda t: E.Binary(t[0], t[1], t[2])),
    st.tuples(st.sampled_from(["&&", "||"]), _bool_expr, _bool_expr)
      .map(lambda t: E.Binary(t[0], t[1], t[2])),
    _bool_expr.map(lambda e: E.Unary("!", e)),
))


@given(expr=_int_expr | _bool_expr, a=st.integers(-20, 20), b=st.integers(-20, 20))
def test_interpreter_and_compiler_agree(expr, a, b):
    env = Env({"a": a, "b": b})
    try:
        interpreted = eval_expr(expr, env)
        interp_err = None
    except EvalError:
        interpreted = None
        interp_err = True

    code = compile_expr(expr)
    ns = {"_cdiv": cdiv, "_cmod": cmod, "_member": getmember, "a": a, "b": b}
    try:
        compiled = eval(code, ns)  # noqa: S307
        comp_err = None
    except (EvalError, ZeroDivisionError):
        compiled = None
        comp_err = True

    assert interp_err == comp_err
    if interp_err is None:
        assert interpreted == compiled
