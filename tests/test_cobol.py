"""Tests for the Cobol copybook translator (paper Section 5.2)."""

import random

import pytest

from repro.tools.cobol import (
    CopybookError,
    Item,
    Picture,
    parse_copybook,
    parse_picture,
    translate,
)


class TestPictureClauses:
    @pytest.mark.parametrize("text,category,digits,decimals,signed", [
        ("X(10)", "alnum", 10, 0, False),
        ("XXX", "alnum", 3, 0, False),
        ("A(5)", "alnum", 5, 0, False),
        ("9(7)", "num", 7, 0, False),
        ("999", "num", 3, 0, False),
        ("S9(5)", "num", 5, 0, True),
        ("S9(7)V99", "num", 7, 2, True),
        ("9(3)V9(4)", "num", 3, 4, False),
    ])
    def test_parse(self, text, category, digits, decimals, signed):
        pic = parse_picture(text)
        assert (pic.category, pic.digits, pic.decimals, pic.signed) == \
            (category, digits, decimals, signed)

    def test_mixed_rejected(self):
        with pytest.raises(CopybookError):
            parse_picture("X9X")

    def test_garbage_rejected(self):
        with pytest.raises(CopybookError):
            parse_picture("Z(3)")


class TestCopybookParsing:
    SIMPLE = """
       01  REC.
           05  NAME     PIC X(10).
           05  AMOUNT   PIC S9(5)V99 COMP-3.
           05  COUNTS OCCURS 4 TIMES PIC 9(3) COMP.
    """

    def test_structure(self):
        roots = parse_copybook(self.SIMPLE)
        assert len(roots) == 1
        rec = roots[0]
        assert rec.name == "rec" and rec.is_group
        assert [c.name for c in rec.children] == ["name", "amount", "counts"]

    def test_widths(self):
        rec = parse_copybook(self.SIMPLE)[0]
        name, amount, counts = rec.children
        assert name.byte_width() == 10
        assert amount.byte_width() == 4   # 7 digits packed + sign
        assert counts.byte_width() == 8   # 4 * 2-byte COMP
        assert rec.byte_width() == 22

    def test_nested_groups(self):
        roots = parse_copybook("""
           01 A.
              05 B.
                 10 C PIC 9(2).
                 10 D PIC 9(2).
              05 E PIC X(1).
        """)
        a = roots[0]
        assert [c.name for c in a.children] == ["b", "e"]
        assert [c.name for c in a.children[0].children] == ["c", "d"]
        assert a.byte_width() == 5

    def test_comment_lines_skipped(self):
        roots = parse_copybook("""
      * a comment in column 7
       01 A.
           05 B PIC X(2).
        """)
        assert roots[0].byte_width() == 2

    def test_88_levels_ignored(self):
        roots = parse_copybook("""
           01 A.
              05 B PIC X(1).
                 88 B-IS-YES VALUE 'Y'.
        """)
        assert [c.name for c in roots[0].children] == ["b"]

    def test_filler_items_named(self):
        roots = parse_copybook("""
           01 A.
              05 FILLER PIC X(3).
              05 FILLER PIC X(2).
        """)
        names = [c.name for c in roots[0].children]
        assert names == ["filler_1", "filler_2"]

    def test_value_clause_ignored(self):
        roots = parse_copybook("""
           01 A.
              05 B PIC 9(2) VALUE 42.
        """)
        assert roots[0].children[0].pic.digits == 2

    def test_unsupported_clause_raises(self):
        with pytest.raises(CopybookError):
            parse_copybook("01 A PIC X(1) WEIRDCLAUSE.")


class TestTranslation:
    def test_billing_copybook_roundtrips(self, rng):
        from repro import gallery
        import importlib.resources as res
        text = (res.files("repro.gallery") / "billing.cpy").read_text()
        tr = translate(text, "billing.cpy")
        assert tr.record_width == 58
        d = tr.compile()
        reps = [d.generate(tr.record_type, rng) for _ in range(10)]
        data = b"".join(d.write(r, tr.record_type) for r in reps)
        assert len(data) == 10 * tr.record_width
        out = list(d.records(data, tr.record_type))
        assert all(pd.nerr == 0 for _, pd in out)
        assert [r for r, _ in out] == reps

    def test_leaf_type_mapping(self):
        tr = translate("""
           01 R.
              05 A PIC X(4).
              05 B PIC S9(3)V99 COMP-3.
              05 C PIC 9(8) COMP.
              05 D PIC 9(6).
        """)
        assert "Pstring_FW(:4:) a;" in tr.pads_source
        assert "Pbcd_FW(:5, 2:) b;" in tr.pads_source
        assert "Pb_uint32_be c;" in tr.pads_source
        assert "Pzoned_FW(:6:) d;" in tr.pads_source

    def test_redefines_becomes_union(self):
        tr = translate("""
           01 R.
              05 RAW        PIC X(8).
              05 AS-NUM REDEFINES RAW PIC 9(8).
        """)
        assert "Punion raw_overlay_t" in tr.pads_source
        assert "Pstring_FW(:8:) raw;" in tr.pads_source
        assert "Pzoned_FW(:8:) as_num;" in tr.pads_source

    def test_occurs_becomes_array(self):
        tr = translate("""
           01 R.
              05 XS OCCURS 5 TIMES PIC 9(2).
        """)
        assert "Parray xs_seq_t" in tr.pads_source
        assert "[5];" in tr.pads_source

    def test_zoned_and_packed_values_survive(self, rng):
        tr = translate("""
           01 R.
              05 Z PIC S9(4).
              05 P PIC S9(5)V9(2) COMP-3.
        """)
        d = tr.compile()
        rep = d.generate(tr.record_type, rng)
        data = d.write(rep, tr.record_type)
        back, pd = d.parse(data, tr.record_type)
        assert pd.nerr == 0
        assert back.z == rep.z
        assert back.p == pytest.approx(rep.p)
