"""Error-recovery semantics: resynchronisation, panic, containment.

The paper's central robustness claim is that the generated parser "checks
all possible error cases" and keeps going: a bad field resynchronises at
the next literal, a lost record panics to end-of-record, and errors in
one record never leak into the next.  These tests pin those behaviours in
both engines.
"""

import pytest

from repro import ErrCode, Pstate, compile_description
from repro.codegen import compile_generated

from .test_codegen import pd_summary


def both(desc_text, **kw):
    return compile_description(desc_text, **kw), compile_generated(desc_text, **kw)


THREE_FIELDS = """
    Precord Pstruct row_t {
        Puint32 a; '|';
        Puint32 b; ':';
        Pstring_any c;
    };
"""


class TestStructResync:
    def test_bad_first_field_recovers_at_literal(self):
        interp, gen = both(THREE_FIELDS)
        for d in (interp, gen):
            rep, pd = d.parse(b"xx|7:tail\n", "row_t")
            assert pd.fields["a"].err_code == ErrCode.INVALID_INT
            assert rep.b == 7 and rep.c == "tail"
            assert pd.pstate & Pstate.PARTIAL

    def test_stuck_field_resyncs_at_next_literal(self):
        interp, gen = both(THREE_FIELDS)
        # Field b is garbage: the parser skips to the next literal ':' and
        # continues with c; b carries its error and a default value.
        for d in (interp, gen):
            rep, pd = d.parse(b"5|~~~~:tail\n", "row_t")
            assert rep.a == 5
            assert rep.b == 0
            assert rep.c == "tail"
            assert pd.fields["b"].err_code == ErrCode.INVALID_INT

    def test_missing_literal_with_no_later_occurrence_panics(self):
        interp, gen = both(THREE_FIELDS)
        # The '|' literal never occurs again: literal recovery rescans for
        # the literal itself and, failing, panics to end-of-record.
        for d in (interp, gen):
            rep, pd = d.parse(b"5~~~~:tail\n", "row_t")
            assert rep.a == 5
            assert pd.err_code == ErrCode.MISSING_LITERAL
            assert pd.pstate & Pstate.PANIC
            assert rep.c == ""  # defaulted: the panic skipped the rest

    def test_panic_when_no_sync_point(self):
        interp, gen = both("Precord Pstruct r { Puint32 a; Puint32 b; };")
        for d in (interp, gen):
            rep, pd = d.parse(b"zz\n", "r")
            assert pd.pstate & Pstate.PANIC
            assert rep.b == 0  # default-filled

    def test_engines_agree_on_recovery(self):
        interp, gen = both(THREE_FIELDS)
        for data in (b"xx|7:tail\n", b"5~~~~:t\n", b"\n", b"1|2:\n",
                     b"9|x:y\n", b"~|~:~\n"):
            ri, pi = interp.parse(data, "row_t")
            rg, pg = gen.parse(data, "row_t")
            assert pd_summary(pi) == pd_summary(pg), data
            assert ri == rg, data


class TestErrorContainment:
    DESC = """
        Precord Pstruct row_t { Puint32 n; '!'; Puint32 m; };
    """

    def test_bad_record_does_not_poison_following(self):
        interp, gen = both(self.DESC)
        data = b"1!2\ngarbage beyond hope\n3!4\n5!5\n"
        for d in (interp, gen):
            out = list(d.records(data, "row_t"))
            assert [pd.nerr > 0 for _, pd in out] == [False, True, False, False]
            assert out[2][0].n == 3 and out[3][0].m == 5

    def test_error_location_points_at_the_record(self):
        interp, _ = both(self.DESC)
        out = list(interp.records(b"1!2\nbad\n", "row_t"))
        loc = out[1][1].loc
        assert loc.record == 1

    def test_every_record_yields_exactly_once(self):
        interp, gen = both(self.DESC)
        lines = [b"1!1", b"x", b"", b"2!2", b"!", b"3!3"]
        data = b"\n".join(lines) + b"\n"
        for d in (interp, gen):
            out = list(d.records(data, "row_t"))
            assert len(out) == len(lines)


class TestArrayRecovery:
    DESC = """
        Precord Parray xs_t {
            Puint32[] : Psep(',') && Pterm(Peor);
        };
    """

    def test_bad_elements_recorded_and_skipped(self):
        interp, gen = both(self.DESC)
        for d in (interp, gen):
            rep, pd = d.parse(b"1,zz,3,4\n", "xs_t")
            assert pd.neerr == 1
            assert pd.first_error == 1
            assert rep[0] == 1 and rep[2:] == [3, 4]

    def test_multiple_bad_elements(self):
        interp, gen = both(self.DESC)
        for d in (interp, gen):
            rep, pd = d.parse(b"a,b,3\n", "xs_t")
            assert pd.neerr == 2
            assert rep[2] == 3

    def test_engines_agree(self):
        interp, gen = both(self.DESC)
        for data in (b"1,zz,3\n", b",,\n", b"zz\n", b"1,\n", b",1\n"):
            ri, pi = interp.parse(data, "xs_t")
            rg, pg = gen.parse(data, "xs_t")
            assert pd_summary(pi) == pd_summary(pg), data
            assert ri == rg, data


class TestUnionPanic:
    def test_union_failure_panics_and_recovers_next_record(self):
        desc = """
            Punion v_t { Pip ip; Puint32 num; };
            Precord Pstruct row_t { v_t v; };
        """
        interp, gen = both(desc)
        data = b"1.2.3.4\nnot anything\n99\n"
        for d in (interp, gen):
            out = list(d.records(data, "row_t"))
            assert out[0][0].v.tag == "ip"
            assert out[1][1].err_code == ErrCode.UNION_MATCH_FAILURE
            assert out[1][1].pstate & Pstate.PANIC
            assert out[2][0].v.value == 99


class TestResyncScanBound:
    def test_scan_is_bounded(self):
        """Literal resynchronisation gives up after MAX_RESYNC_SCAN bytes
        (within the record) rather than scanning forever."""
        from repro.core.types import MAX_RESYNC_SCAN
        interp, _ = both("Precord Pstruct r { Puint32 a; '!'; Puint32 b; };")
        filler = b"x" * (MAX_RESYNC_SCAN + 100)
        data = filler + b"!5\n"
        rep, pd = interp.parse(data, "r")
        # The '!' lies beyond the scan bound: the parser panics instead.
        assert pd.pstate & Pstate.PANIC
