"""Unit tests for the PADS description lexer."""

import pytest

from repro.dsl.lexer import Lexer, LexError


def toks(text):
    return [(t.kind, t.value) for t in Lexer(text).tokens() if t.kind != "eof"]


class TestBasics:
    def test_idents_and_keywords(self):
        assert toks("Pstruct foo_t") == [("keyword", "Pstruct"), ("ident", "foo_t")]

    def test_base_type_names_are_idents(self):
        assert toks("Puint32")[0] == ("ident", "Puint32")

    def test_integers(self):
        assert toks("0 42 007") == [("int", "0"), ("int", "42"), ("int", "007")]

    def test_hex_integers(self):
        assert toks("0xFF 0x10") == [("int", "0xFF"), ("int", "0x10")]

    def test_floats(self):
        assert toks("3.14 1.0e5 2.5E-3") == [
            ("float", "3.14"), ("float", "1.0e5"), ("float", "2.5E-3")]

    def test_int_followed_by_range_is_not_float(self):
        assert toks("0..9") == [("int", "0"), ("op", ".."), ("int", "9")]


class TestLiterals:
    def test_char_literal(self):
        assert toks("'|'") == [("char", "|")]

    def test_char_escapes(self):
        assert toks(r"'\n' '\t' '\\' '\''") == [
            ("char", "\n"), ("char", "\t"), ("char", "\\"), ("char", "'")]

    def test_hex_escape(self):
        assert toks(r"'\x41'") == [("char", "A")]

    def test_string_literal(self):
        assert toks('"HTTP/"') == [("string", "HTTP/")]

    def test_string_with_escaped_quote(self):
        assert toks(r'"a\"b"') == [("string", 'a"b')]

    def test_empty_char_rejected(self):
        with pytest.raises(LexError):
            toks("''")

    def test_unterminated_string_rejected(self):
        with pytest.raises(LexError):
            toks('"oops')

    def test_unknown_escape_rejected(self):
        with pytest.raises(LexError):
            toks(r"'\q'")


class TestOperators:
    def test_param_brackets(self):
        assert toks("(:3:)") == [("op", "(:"), ("int", "3"), ("op", ":)")]

    def test_param_brackets_with_char(self):
        assert toks("(:' ':)") == [("op", "(:"), ("char", " "), ("op", ":)")]

    def test_arrow(self):
        assert toks("=>") == [("op", "=>")]

    def test_comparisons(self):
        assert [v for _, v in toks("<= >= == != < >")] == [
            "<=", ">=", "==", "!=", "<", ">"]

    def test_logical(self):
        assert [v for _, v in toks("&& || ! & |")] == ["&&", "||", "!", "&", "|"]

    def test_plain_colon_in_ternary_context(self):
        # ':' not immediately followed by ')' stays a plain colon.
        assert toks("a ? b : c") == [
            ("ident", "a"), ("op", "?"), ("ident", "b"),
            ("op", ":"), ("ident", "c")]


class TestComments:
    def test_pads_line_comment(self):
        assert toks("Pip ip; /- an address\nfoo") == [
            ("ident", "Pip"), ("ident", "ip"), ("op", ";"), ("ident", "foo")]

    def test_cxx_line_comment(self):
        assert toks("a // comment\nb") == [("ident", "a"), ("ident", "b")]

    def test_block_comment(self):
        assert toks("a /* x\ny */ b") == [("ident", "a"), ("ident", "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            toks("/* never ends")


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = Lexer("ab\n  cd").tokens()
        assert (tokens[0].line, tokens[0].col) == (1, 1)
        assert (tokens[1].line, tokens[1].col) == (2, 3)

    def test_error_position(self):
        try:
            Lexer("abc\n  $").tokens()
        except LexError as exc:
            assert exc.line == 2
            assert exc.col == 3
        else:
            pytest.fail("expected LexError")
