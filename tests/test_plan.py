"""Tests for the plan IR (repro.plan): the analyzed middle layer.

Pins the facts both engines now consume from one analysis instead of
re-deriving independently: the ambient-coding table (with an EBCDIC
regression through both engines), static widths, fastpath verdicts and
their reasons, fused literal runs (interpreter and codegen observing the
same per-literal fallback semantics), and the ``padsc plan``
pretty-printer.
"""

import random

import pytest

from repro import compile_description, gallery
from repro.codegen import compile_generated, generate_source
from repro.core.io import FixedWidthRecords
from repro.plan import ENCODINGS, analyze, encoding_for, format_plan
from repro.dsl.parser import parse_description
from repro.dsl.typecheck import check_description

from .test_codegen import pd_summary


def _analyze(text, ambient="ascii"):
    desc = parse_description(text, "<test>")
    check_description(desc, ambient)
    return analyze(desc, ambient)


# ---------------------------------------------------------------------------
# Encodings: one table, shared by everything
# ---------------------------------------------------------------------------


class TestEncodings:
    def test_the_one_table(self):
        assert ENCODINGS == {"ascii": "latin-1", "binary": "latin-1",
                             "ebcdic": "cp037"}

    def test_encoding_for(self):
        assert encoding_for("ebcdic") == "cp037"
        with pytest.raises(ValueError):
            encoding_for("utf-16")

    def test_plan_carries_the_encoding(self):
        assert _analyze(gallery.CLF).encoding == "latin-1"

    def test_no_second_encodings_table(self):
        # The acceptance criterion in code form: neither engine defines
        # its own ambient table anymore.
        import repro.codegen.backends.source as emitter
        import repro.core.binding as binding
        assert not hasattr(emitter, "_ENCODINGS")
        assert not hasattr(binding, "_ENCODINGS")


EBCDIC_DESC = """
Precord Pstruct item_t {
  Pe_string_FW(:6:) tag;
  Pzoned_FW(:5:)    qty;
  Pbcd_FW(:7, 2:)   amount;
};
Psource Parray items_t {
  item_t[];
};
"""


class TestEbcdicRegression:
    """cp037 descriptions parse identically through both engines."""

    def test_both_engines_byte_identical(self):
        width = 6 + 5 + 4  # FW string + zoned digits + packed (7+2+2)//2
        disc = FixedWidthRecords(width)
        interp = compile_description(EBCDIC_DESC, ambient="ebcdic",
                                     discipline=disc)
        gen = compile_generated(EBCDIC_DESC, ambient="ebcdic",
                                discipline=disc)
        assert interp.plan.encoding == "cp037"
        assert interp.plan.decl("item_t").width == width

        rng = random.Random(2005)
        reps = [interp.generate("item_t", rng) for _ in range(25)]
        data = b"".join(interp.write(r, "item_t") for r in reps)
        assert len(data) == 25 * width

        out_i = list(interp.records(data, "item_t"))
        out_g = list(gen.records(data, "item_t"))
        assert [r for r, _ in out_i] == reps
        assert [r for r, _ in out_i] == [r for r, _ in out_g]
        assert ([pd_summary(p) for _, p in out_i]
                == [pd_summary(p) for _, p in out_g])
        assert all(pd.nerr == 0 for _, pd in out_i)
        # Writing round-trips through the same cp037 table.
        assert b"".join(gen.write(r, "item_t") for r, _ in out_g) == data

    def test_ebcdic_corruption_handled_identically(self):
        width = 15
        disc = FixedWidthRecords(width)
        interp = compile_description(EBCDIC_DESC, ambient="ebcdic",
                                     discipline=disc)
        gen = compile_generated(EBCDIC_DESC, ambient="ebcdic",
                                discipline=disc)
        rng = random.Random(7)
        rep = interp.generate("item_t", rng)
        raw = bytearray(interp.write(rep, "item_t"))
        raw[8] = 0x40  # EBCDIC space inside the zoned field
        pairs_i = list(interp.records(bytes(raw), "item_t"))
        pairs_g = list(gen.records(bytes(raw), "item_t"))
        assert ([pd_summary(p) for _, p in pairs_i]
                == [pd_summary(p) for _, p in pairs_g])


# ---------------------------------------------------------------------------
# Static widths and verdicts
# ---------------------------------------------------------------------------


class TestWidthsAndVerdicts:
    def test_call_detail_widths(self):
        plan = _analyze(gallery.CALL_DETAIL, "binary")
        assert plan.decl("call_t").width == 24

    def test_clf_is_dynamic_but_regex_eligible(self):
        plan = _analyze(gallery.CLF)
        decl = plan.decl("entry_t")
        assert decl.width is None
        assert decl.verdict.eligible
        assert decl.verdict.reason == "anchored regex over the record"

    def test_fixed_width_records_get_the_slice_path(self):
        plan = _analyze(gallery.CALL_DETAIL, "binary")
        verdict = plan.decl("call_t").verdict
        assert verdict.eligible
        assert verdict.reason == "fixed-width slicing over 24 bytes"

    def test_non_record_types_are_ineligible_with_reason(self):
        plan = _analyze(gallery.CLF)
        verdict = plan.decl("request_t").verdict
        assert not verdict.eligible
        assert "not a Precord" in verdict.reason

    def test_parameterised_records_are_ineligible(self):
        plan = _analyze("""
Precord Pstruct row_t(:int len:) {
  Pstring_FW(:len:) body;
};
Psource Parray rows_t {
  row_t(:4:)[];
};
""")
        verdict = plan.decl("row_t").verdict
        assert not verdict.eligible
        assert verdict.reason == "parameterised type"


# ---------------------------------------------------------------------------
# Optimization passes: literal fusion + fixed-width slicing
# ---------------------------------------------------------------------------

FUSED_DESC = """
Precord Pstruct pair_t {
  "<<";
  '[';
  Puint32 a;
  "]::";
  '(';
  Puint32 b;
  ')';
};
Psource Parray pairs_t {
  pair_t[];
};
"""


class TestLiteralFusion:
    def test_adjacent_literals_fuse(self):
        plan = _analyze(FUSED_DESC)
        decl = plan.decl("pair_t")
        assert (0, 1, b"<<[") in decl.fused_runs
        assert (3, 4, b"]::(") in decl.fused_runs

    def test_fused_parse_identical_to_reference(self):
        fast = compile_description(FUSED_DESC)
        ref = compile_description(FUSED_DESC, fastpath=False)
        gen = compile_generated(FUSED_DESC)
        gen_ref = compile_generated(FUSED_DESC, fastpath=False)
        assert "_lrun" in gen.py_source
        assert "_lrun" not in gen_ref.py_source

        clean = b"<<[7]::(9)\n<<[12]::(0)\n"
        # Corruptions hitting inside and across the fused runs: the fused
        # match fails without consuming, so per-literal resync behaves
        # exactly as the reference engines.
        corrupt = (b"<<[7]::(9)\n"
                   b"<[7]::(9)\n"        # first run broken at byte 1
                   b"<<7]::(9)\n"        # missing '[' inside run
                   b"<<[7]:(9)\n"        # second run broken
                   b"<<[7]::9)\n"        # missing '(' inside run
                   b"garbage\n"
                   b"<<[1]::(2)\n")
        for data in (clean, corrupt):
            base = [(r, pd_summary(p))
                    for r, p in ref.records(data, "pair_t")]
            for engine in (fast, gen, gen_ref):
                got = [(r, pd_summary(p))
                       for r, p in engine.records(data, "pair_t")]
                assert got == base, engine


class TestSlicePath:
    def test_interpreter_gains_the_fast_fn(self):
        disc = FixedWidthRecords(24)
        interp = compile_description(gallery.CALL_DETAIL, ambient="binary",
                                     discipline=disc)
        node = interp.node("call_t")
        assert node.fast_fn is not None

    def test_reference_mode_has_no_fast_fn(self):
        disc = FixedWidthRecords(24)
        interp = compile_description(gallery.CALL_DETAIL, ambient="binary",
                                     discipline=disc, fastpath=False)
        assert interp.node("call_t").fast_fn is None

    def test_sliced_parse_identical_to_reference(self):
        from repro.tools.datagen import call_detail_workload
        disc = FixedWidthRecords(24)
        fast = compile_description(gallery.CALL_DETAIL, ambient="binary",
                                   discipline=disc)
        ref = compile_description(gallery.CALL_DETAIL, ambient="binary",
                                  discipline=disc, fastpath=False)
        data = bytearray(call_detail_workload(60, random.Random(3)))
        data[22] = 0xFF  # corrupt a constrained field in record 0
        data = bytes(data)
        ref_out = list(ref.records(data, "call_t"))
        base = [(r, pd_summary(p)) for r, p in ref_out]
        got = [(r, pd_summary(p)) for r, p in fast.records(data, "call_t")]
        assert got == base
        assert any(p.nerr for _, p in ref_out)  # the corruption registered


# ---------------------------------------------------------------------------
# padsc plan (CLI pretty-printer)
# ---------------------------------------------------------------------------


class TestPlanCLI:
    @pytest.fixture()
    def clf_path(self, tmp_path):
        path = tmp_path / "clf.pads"
        path.write_text(gallery.CLF)
        return str(path)

    def test_whole_description(self, clf_path, capsys):
        from repro.tools.padsc import main
        assert main(["plan", clf_path]) == 0
        out = capsys.readouterr().out
        assert "plan: ambient=ascii encoding=latin-1 source=clt_t" in out
        assert "fastpath: eligible: anchored regex over the record" in out
        assert "fastpath: not eligible:" in out

    def test_single_type(self, clf_path, capsys):
        from repro.tools.padsc import main
        assert main(["plan", clf_path, "--type", "entry_t"]) == 0
        out = capsys.readouterr().out
        assert "Pstruct entry_t  [Precord]" in out
        assert "width: dynamic" in out
        assert "resync literals:" in out

    def test_unknown_type(self, clf_path, capsys):
        from repro.tools.padsc import main
        assert main(["plan", clf_path, "--type", "nope"]) == 2
        assert "no type named" in capsys.readouterr().err

    def test_format_plan_shows_widths(self):
        plan = _analyze(gallery.CALL_DETAIL, "binary")
        text = format_plan(plan, "call_t")
        assert "width: 24 bytes" in text
        assert "fastpath: eligible: fixed-width slicing over 24 bytes" in text


# ---------------------------------------------------------------------------
# Engines consume the plan (structure sharing)
# ---------------------------------------------------------------------------


class TestPlanIsShared:
    def test_bound_nodes_carry_plan_nodes(self):
        interp = compile_description(gallery.CLF)
        decl = interp.plan.decl("entry_t")
        assert interp.node("entry_t").plan is decl

    def test_emitter_reuses_an_existing_plan(self):
        desc = parse_description(gallery.CLF, "<description>")
        check_description(desc, "ascii")
        plan = analyze(desc, "ascii")
        src_shared = generate_source(gallery.CLF)
        from repro.codegen.backends.source import generate_source as emit
        assert emit(desc, "ascii", source_text=gallery.CLF,
                    plan=plan) == src_shared
