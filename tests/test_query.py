"""Tests for the XQuery-subset engine (paper Section 5.4).

Includes the three queries the paper says the Sirius analyst needed:
orders in a time window, orders through a particular state, and the
average time between two states.
"""

import pytest

from repro import compile_description, gallery
from repro.tools.dataapi import node_new
from repro.tools.query import QueryError, XQuery, query


@pytest.fixture(scope="module")
def root(sirius):
    rep, pd = sirius.parse(gallery.SIRIUS_SAMPLE)
    return node_new(sirius, rep, pd, None, name="sirius")


class TestPaths:
    def test_simple_path(self, root):
        res = query("$sirius/h/tstamp", root)
        assert [n.value() for n in res] == [1005022800]

    def test_array_steps(self, root):
        res = query("$sirius/es/entry", root)
        assert len(res) == 2

    def test_positional_predicate(self, root):
        res = query("$sirius/es/entry[1]/header/order_num", root)
        assert [n.value() for n in res] == [9152]
        res = query("$sirius/es/entry[2]/header/order_num", root)
        assert [n.value() for n in res] == [9153]

    def test_rooted_path(self, root):
        res = query("/es/entry/header/order_num", root)
        assert [n.value() for n in res] == [9152, 9153]

    def test_descendant_axis(self, root):
        res = query("$sirius//tstamp", root)
        values = {n.value().epoch if hasattr(n.value(), "epoch") else n.value()
                  for n in res}
        assert 1001476800 in values

    def test_wildcard(self, root):
        res = query("$sirius/es/entry[1]/header/*", root)
        assert len(res) == 13  # the 13 header fields

    def test_comparison_predicate(self, root):
        res = query("$sirius/es/entry[header/order_num = 9153]", root)
        assert len(res) == 1

    def test_nested_predicates(self, root):
        res = query("$sirius/es/entry[events/event[2]]", root)
        assert len(res) == 1  # only the second order has two events


class TestPaperQueries:
    def test_time_window_query(self, root):
        """The paper's query: orders starting within a given window."""
        res = query(
            '$sirius/es/entry[events/event[1]'
            '[tstamp >= xs:date("2001-09-01") and '
            ' tstamp <= xs:date("2001-10-01")]]', root)
        assert len(res) == 2  # both sample orders start in Sept 2001

        res = query(
            '$sirius/es/entry[events/event[1]'
            '[tstamp >= xs:date("2001-09-20") and '
            ' tstamp <= xs:date("2001-10-01")]]', root)
        nums = [n.kth_child_named("header").kth_child_named("order_num").value()
                for n in res]
        assert nums == [9153]

    def test_count_orders_through_state(self, root):
        """'Count the number of orders going through a particular state.'"""
        res = query('count($sirius/es/entry[events/event/state = "LOC_CRTE"])',
                    root)
        assert res == [1]

    def test_average_time_between_states(self, root):
        """'Average time required to go from a particular state to
        another.'"""
        res = query(
            'avg(for $o in $sirius/es/entry'
            '    let $a := $o/events/event[state = "LOC_CRTE"]/tstamp,'
            '        $b := $o/events/event[state = "LOC_OS_10"]/tstamp'
            '    where exists($a) and exists($b)'
            '    return $b - $a)', root)
        assert res == [1001649601 - 1001476800]


class TestFlwor:
    def test_for_where_return(self, root):
        res = query("for $e in $sirius/es/entry "
                    "where $e/header/order_num > 9152 "
                    "return $e/header/stream", root)
        assert [n.value() for n in res] == ["DUO"]

    def test_let_binding(self, root):
        res = query("let $n := count($sirius/es/entry) return $n + 1", root)
        assert res == [3]

    def test_order_by(self, root):
        res = query("for $e in $sirius/es/entry "
                    "order by $e/header/order_num descending "
                    "return $e/header/order_num", root)
        assert [n.value() for n in res] == [9153, 9152]

    def test_nested_for(self, root):
        res = query("for $e in $sirius/es/entry "
                    "for $v in $e/events/event "
                    "return $v/state", root)
        assert len(res) == 3


class TestFunctionsAndOperators:
    def test_arithmetic(self, root):
        assert query("1 + 2 * 3", root) == [7]
        assert query("(1 + 2) * 3", root) == [9]
        assert query("7 div 2", root) == [3.5]
        assert query("7 mod 2", root) == [1]

    def test_boolean_ops(self, root):
        assert query("1 < 2 and 2 < 3", root) == [True]
        assert query("1 > 2 or 2 < 3", root) == [True]
        assert query("not(1 > 2)", root) == [True]

    def test_string_functions(self, root):
        assert query('contains("hello", "ell")', root) == [True]
        assert query('starts-with($sirius/es/entry[1]/header/order_type, "EDTF")',
                     root) == [True]
        assert query('string-length("abcd")', root) == [4]

    def test_aggregates(self, root):
        assert query("sum($sirius/es/entry/header/order_num)", root) == [9152 + 9153]
        assert query("min($sirius/es/entry/header/order_num)", root) == [9152]
        assert query("max($sirius/es/entry/header/order_num)", root) == [9153]

    def test_distinct_values(self, root):
        res = query("distinct-values($sirius/es/entry/header/stream)", root)
        assert res == ["DUO"]

    def test_exists_empty(self, root):
        assert query("exists($sirius/es/entry[3])", root) == [False]
        assert query("empty($sirius/es/entry[3])", root) == [True]

    def test_if_then_else(self, root):
        assert query("if (count($sirius/es/entry) = 2) then 'two' else 'other'",
                     root) == ["two"]

    def test_quantified(self, root):
        assert query("every $e in $sirius/es/entry satisfies "
                     "$e/header/order_num >= 9152", root) == [True]
        assert query("some $e in $sirius/es/entry satisfies "
                     "$e/header/zip_code = '07988'", root) == [True]

    def test_sequence_expr(self, root):
        assert query("(1, 2, 3)", root) == [1, 2, 3]
        assert query("count((1, 2, 3))", root) == [3]


class TestErrorsAndEdgeCases:
    def test_unknown_function(self, root):
        with pytest.raises(QueryError):
            query("nosuch(1)", root)

    def test_unbound_variable(self, root):
        with pytest.raises(QueryError):
            query("$nope/x", root)

    def test_syntax_error(self, root):
        with pytest.raises(QueryError):
            query("for $x in", root)

    def test_comments_ignored(self, root):
        assert query("1 (: a comment :) + 2", root) == [3]

    def test_reusable_compiled_query(self, root):
        q = XQuery("count($sirius/es/entry)")
        assert q.run(root) == [2]
        assert q.run(root) == [2]

    def test_query_over_buggy_data_pd(self, sirius):
        bad = gallery.SIRIUS_SAMPLE.replace("|10|1000295291", "|10|z95291")
        rep, pd = sirius.parse(bad)
        root = node_new(sirius, rep, pd, None, name="sirius")
        res = query("count($sirius/es/entry[pd/nerr >= 1])", root)
        assert res == [1]
