"""Tests for :mod:`repro.observe` — metrics, tracing, and the merge
property the parallel engine relies on: metering the chunks of *any*
split of a record stream and merging the per-chunk registries yields the
same metrics as metering the whole stream.
"""

import io
import json
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro import compile_description, gallery, observe
from repro.observe.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SIZE_BUCKETS,
)
from repro.observe.trace import Tracer

DESC = """
Precord Pstruct entry_t {
  Puint32 a;
  '|';
  Puint32 b;
  '|';
  Pstring(:'|':) name;
};
Psource Parray src_t { entry_t[]; };
"""


def make_lines(n):
    """A workload with a deterministic sprinkling of bad records."""
    lines = []
    for i in range(n):
        if i % 7 == 3:
            lines.append(f"{i}|x|bad{i}")       # INVALID_INT on b
        elif i % 11 == 5:
            lines.append(f"junk line {i}")      # panics
        else:
            lines.append(f"{i}|{i * 2}|ok{i}")
    return lines


@pytest.fixture(scope="module")
def desc():
    return compile_description(DESC)


# -- metric primitives ---------------------------------------------------------


class TestMetrics:
    def test_counter_inc_and_merge(self):
        a, b = Counter(), Counter()
        a.inc()
        a.inc(4)
        b.inc(2)
        a.merge(b)
        assert a.snapshot() == 7

    def test_gauge_merges_to_max(self):
        a, b = Gauge(), Gauge()
        a.set(3.0)
        b.set(9.0)
        a.merge(b)
        assert a.snapshot() == 9.0

    def test_histogram_buckets_and_merge(self):
        a = Histogram(bounds=(1.0, 10.0))
        b = Histogram(bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            a.observe(v)
        b.observe(0.25)
        a.merge(b)
        snap = a.snapshot()
        assert snap["count"] == 4
        assert snap["buckets"] == {"1": 2, "10": 1, "+Inf": 1}
        assert snap["sum"] == pytest.approx(55.75)

    def test_histogram_bucket_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0,)).merge(Histogram(bounds=(2.0,)))

    def test_timing_histogram_deterministic_snapshot(self):
        h = Histogram(timing=True)
        h.observe(0.25)
        assert h.snapshot(deterministic=True) == {"count": 1}
        assert h.snapshot()["sum"] == pytest.approx(0.25)

    def test_registry_merge_does_not_share_state(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("x", "l").inc(3)
        b.histogram("h", bounds=SIZE_BUCKETS).observe(20)
        a.merge(b)
        b.counter("x", "l").inc(10)
        assert a.value("x", "l") == 3
        assert b.value("x", "l") == 13

    def test_registry_pickles(self):
        reg = MetricsRegistry()
        reg.counter("records.total").inc(5)
        reg.histogram("latency", "t", timing=True).observe(1e-4)
        reg.gauge("hwm").set(7.0)
        clone = pickle.loads(pickle.dumps(reg))
        assert clone.snapshot() == reg.snapshot()

    def test_nested_snapshot_layout(self):
        reg = MetricsRegistry()
        reg.counter("errors.by_field", "top.a", "INVALID_INT").inc(2)
        reg.counter("records.total").inc()
        snap = reg.snapshot()
        assert snap["errors.by_field"] == {"top.a": {"INVALID_INT": 2}}
        assert snap["records.total"] == 1


# -- the merge property --------------------------------------------------------


class TestMergeProperty:
    """Merging per-chunk registries over any split of a stream equals
    metering the whole stream (the parallel engine's metrics guarantee)."""

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_any_split_merges_to_whole(self, desc, data):
        lines = make_lines(40)
        cuts = data.draw(st.lists(st.integers(0, len(lines)),
                                  max_size=6).map(sorted))
        bounds = [0] + cuts + [len(lines)]
        chunks = ["".join(f"{ln}\n" for ln in lines[a:b])
                  for a, b in zip(bounds, bounds[1:])]

        whole = MetricsRegistry()
        with observe.observed(whole):
            for _ in desc.records("".join(f"{ln}\n" for ln in lines),
                                  "entry_t"):
                pass

        merged = MetricsRegistry()
        for chunk in chunks:
            part = MetricsRegistry()
            with observe.observed(part):
                for _ in desc.records(chunk, "entry_t"):
                    pass
            merged.merge(part)

        assert merged.snapshot(deterministic=True) == \
            whole.snapshot(deterministic=True)


# -- tracer --------------------------------------------------------------------


class TestTracer:
    def test_enter_exit_paths_nest(self, desc):
        with observe.observed(trace=True) as obs:
            desc.parse("1|2|x\n", "entry_t")
        kinds = [(e.kind, e.path) for e in obs.tracer.events]
        assert ("enter", "a") in kinds and ("exit", "a") in kinds
        assert ("enter", "name") in kinds
        spans = {e.path: (e.start, e.end) for e in obs.tracer.events
                 if e.kind == "exit"}
        assert spans["a"] == (0, 1)
        assert spans["b"] == (2, 3)

    def test_record_events_cover_stream(self, desc):
        data = "".join(f"{ln}\n" for ln in make_lines(12))
        with observe.observed(trace=True) as obs:
            list(desc.records(data, "entry_t"))
        recs = [e for e in obs.tracer.events if e.kind == "record"]
        assert len(recs) == 12
        assert [e.record for e in recs] == list(range(12))
        assert {e.outcome for e in recs} == {"ok", "err", "panic"}

    def test_bounded_buffer_counts_drops(self):
        tr = Tracer(max_events=2)
        for i in range(5):
            tr.record_event("t", i, i + 1, i, "ok")
        assert len(tr) == 2 and tr.dropped == 3

    def test_jsonl_sink_streams(self, desc):
        sink = io.StringIO()
        with observe.observed(trace_sink=sink):
            desc.parse("1|2|x\n", "entry_t")
        lines = [json.loads(l) for l in sink.getvalue().splitlines()]
        assert lines and {"kind", "path", "type", "start", "end",
                          "record", "outcome", "err"} <= set(lines[0])

    def test_tracer_forces_serial_fallback(self, desc):
        data = "".join(f"{ln}\n" for ln in make_lines(30))
        with observe.observed(trace=True) as obs:
            out = list(desc.records_parallel(data, "entry_t", jobs=4))
        # Worker-side events could never reach this tracer; a complete
        # event stream proves the serial path ran.
        recs = [e for e in obs.tracer.events if e.kind == "record"]
        assert len(recs) == len(out) == 30


# -- observer lifecycle --------------------------------------------------------


class TestObserver:
    def test_observed_installs_and_restores(self):
        assert observe.CURRENT is None
        with observe.observed() as outer:
            assert observe.CURRENT is outer
            with observe.observed() as inner:
                assert observe.CURRENT is inner
            assert observe.CURRENT is outer
        assert observe.CURRENT is None

    def test_count_is_noop_when_disabled(self):
        observe.count("resync.literal")  # must not raise, must not install
        assert observe.CURRENT is None

    def test_stats_shape(self, desc):
        data = "".join(f"{ln}\n" for ln in make_lines(20))
        with observe.observed() as obs:
            list(desc.records(data, "entry_t"))
        s = obs.stats()
        assert s["records"]["total"] == 20
        assert s["records"]["bad"] == s["records"]["partial"] + \
            s["records"]["panic"]
        assert s["bytes"]["total"] == len(data)
        assert "INVALID_INT" in s["errors"]["by_code"]
        assert any(path.endswith(".b")
                   for path in s["errors"]["by_field"])
        assert s["throughput"]["wall_seconds"] > 0
        assert s["latency"]["entry_t"]["count"] == 20
        assert json.dumps(s)  # JSON-serialisable as-is

    def test_summary_renders(self, desc):
        with observe.observed() as obs:
            list(desc.records("1|2|x\n", "entry_t"))
        text = obs.summary()
        assert "records: 1" in text and "records/sec" in text

    def test_resync_counters_fire(self):
        d = compile_description("""
Precord Pstruct pair_t {
  Puint32 a;
  '|';
  Puint32 b;
  ';';
};
Psource Parray src_t { pair_t[]; };
""")
        with observe.observed() as obs:
            list(d.records("1|2;\n3 garbage |4;\n", "pair_t"))
        resync = obs.stats()["resync"]
        assert resync["literal"] + resync["field_skip"] > 0
