"""Tests for the Regulus description: the multiple-missing-value story.

Paper Section 5.2: "The Regulus project uses PADS accumulator programs to
find all the different representations of 'data not available', typical
examples of which include 0, a blank, NONE, and Nothing."
"""

import random

import pytest

from repro import gallery
from repro.tools.accum import accumulate_records
from repro.tools.query import query_records

SAMPLE = (
    "1005022800|nyc-core-1|ge-0/0/0|07|42.5|NONE|12\n"
    "1005022860|nyc-core-1|ge-0/0/1|07||Nothing|0\n"
    "1005022920|chi-edge-3|xe-1/2/0|08|0|17.25|3\n"
)


@pytest.fixture(scope="module")
def regulus():
    return gallery.load_regulus()


class TestParsing:
    def test_sample_parses(self, regulus):
        rep, pd = regulus.parse(SAMPLE)
        assert pd.nerr == 0
        assert len(rep) == 3

    def test_all_missing_representations(self, regulus):
        rep, _ = regulus.parse(SAMPLE)
        r0, r1, r2 = rep
        assert r0.in_util.tag == "value" and r0.in_util.value == 42.5
        assert r0.out_util.tag == "tagged" and r0.out_util.value == "NONE"
        assert r1.in_util.tag == "blank"
        assert r1.out_util.tag == "tagged" and r1.out_util.value == "Nothing"
        assert r2.in_util.tag == "value" and r2.in_util.value == 0.0

    def test_roundtrip(self, regulus):
        rep, _ = regulus.parse(SAMPLE)
        assert regulus.write(rep) == SAMPLE.encode()

    def test_hour_constraint(self, regulus):
        bad = SAMPLE.replace("|07|42.5", "|97|42.5")
        _, pd = regulus.parse(bad)
        assert pd.nerr == 1


class TestAccumulatorDiscovery:
    def test_missing_value_census(self, regulus):
        """The accumulator's union-tag distribution *is* the discovery: it
        lists every representation of 'data not available' in the data."""
        acc, _, n = accumulate_records(regulus, SAMPLE, "util_t")
        assert n == 3
        in_tags = acc.field("in_util").self_acc.values
        assert in_tags == {"value": 2, "blank": 1}
        # Drill into the tagged branch for the literal spellings.
        out_misses = acc.field("out_util.tagged").self_acc.values
        assert out_misses == {"NONE": 1, "Nothing": 1}

    def test_zero_is_visible_in_value_distribution(self, regulus):
        acc, _, _ = accumulate_records(regulus, SAMPLE, "util_t")
        values = acc.field("in_util.value").self_acc.values
        assert 0.0 in values  # the suspicious 0 representation


class TestStreamingQuery:
    def test_query_records_streams(self, regulus):
        drops = list(query_records(regulus, SAMPLE, "util_t",
                                   "$record/drops"))
        assert [n.value() for n in drops] == [12, 0, 3]

    def test_query_records_filters(self, regulus):
        routers = list(query_records(
            regulus, SAMPLE, "util_t",
            '$record[in_util/blank or out_util/tagged]/router'))
        assert [n.value() for n in routers] == ["nyc-core-1", "nyc-core-1"]

    def test_bounded_memory_over_many_records(self, regulus):
        rng = random.Random(0)
        lines = []
        for i in range(2000):
            util = rng.choice(["", "NONE", "Nothing", f"{rng.uniform(0,100):.1f}"])
            lines.append(f"{1005022800+i}|r{i%7}|if{i%3}|{i%24:02d}|{util}|0|{i%5}")
        data = ("\n".join(lines) + "\n").encode()
        hits = sum(1 for _ in query_records(
            regulus, data, "util_t", "$record[drops > 2]"))
        expected = sum(1 for i in range(2000) if i % 5 > 2)
        assert hits == expected


class TestGenerated:
    def test_codegen_equivalence(self, regulus):
        from repro.codegen import compile_generated
        from .test_codegen import pd_summary
        gen = compile_generated(gallery.REGULUS)
        assert "_fp_util_t" in gen.py_source
        ri, pi = regulus.parse(SAMPLE)
        rg, pg = gen.parse(SAMPLE)
        assert pd_summary(pi) == pd_summary(pg)
        assert ri == rg

    def test_generated_random_roundtrip(self, regulus, rng):
        for _ in range(25):
            rep = regulus.generate("util_t", rng)
            data = regulus.write(rep, "util_t")
            back, pd = regulus.parse(data, "util_t")
            assert pd.nerr == 0
            assert back == rep
