"""Tests for the streaming summaries (paper Section 9 future work)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import gallery
from repro.tools.accum import accumulate_records, Accumulator
from repro.tools.summaries import (
    NumericSummaries,
    QuantileSketch,
    ReservoirSample,
    StreamingHistogram,
    attach_summaries,
)


class TestStreamingHistogram:
    def test_exact_when_few_distinct_values(self):
        hist = StreamingHistogram(bins=8)
        for v in [1, 1, 2, 2, 2, 9]:
            hist.add(v)
        assert hist.counts() == [(1.0, 2), (2.0, 3), (9.0, 1)]

    def test_bin_bound_respected(self):
        hist = StreamingHistogram(bins=16)
        rng = random.Random(0)
        for _ in range(10_000):
            hist.add(rng.uniform(0, 1000))
        assert len(hist.counts()) <= 16
        assert hist.n == 10_000

    def test_counts_are_conserved(self):
        hist = StreamingHistogram(bins=4)
        for v in range(100):
            hist.add(v)
        assert sum(c for _, c in hist.counts()) == 100

    def test_cdf_monotone(self):
        hist = StreamingHistogram(bins=8)
        rng = random.Random(1)
        for _ in range(5000):
            hist.add(rng.gauss(0, 1))
        xs = [-3, -1, 0, 1, 3]
        cdfs = [hist.cdf(x) for x in xs]
        assert cdfs == sorted(cdfs)
        assert cdfs[0] < 0.2 and cdfs[-1] > 0.8

    def test_render(self):
        hist = StreamingHistogram(bins=4)
        for v in (1, 1, 1, 5):
            hist.add(v)
        out = hist.render(width=10)
        assert "#" in out and "1.00" in out

    def test_min_bins(self):
        with pytest.raises(ValueError):
            StreamingHistogram(bins=1)


class TestQuantileSketch:
    def test_uniform_quantiles_within_eps(self):
        eps = 0.02
        sketch = QuantileSketch(eps)
        n = 20_000
        rng = random.Random(3)
        values = [rng.random() for _ in range(n)]
        for v in values:
            sketch.add(v)
        values.sort()
        for q in (0.1, 0.25, 0.5, 0.75, 0.9):
            estimate = sketch.query(q)
            true_rank = q * n
            # Locate the estimate's true rank.
            import bisect
            rank = bisect.bisect_left(values, estimate)
            assert abs(rank - true_rank) <= 3 * eps * n, (q, rank, true_rank)

    def test_space_is_sublinear(self):
        sketch = QuantileSketch(0.01)
        rng = random.Random(4)
        for _ in range(50_000):
            sketch.add(rng.random())
        assert sketch.space() < 5_000  # far below n

    def test_sorted_and_reversed_streams(self):
        for stream in (range(1000), reversed(range(1000))):
            sketch = QuantileSketch(0.05)
            for v in stream:
                sketch.add(v)
            median = sketch.query(0.5)
            assert 350 <= median <= 650

    def test_empty(self):
        assert QuantileSketch(0.1).query(0.5) is None

    def test_extremes(self):
        sketch = QuantileSketch(0.05)
        for v in range(100):
            sketch.add(v)
        assert sketch.query(0.0) <= 10
        assert sketch.query(1.0) >= 90

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(-1000, 1000), min_size=10, max_size=500))
    def test_property_median_within_bounds(self, values):
        sketch = QuantileSketch(0.1)
        for v in values:
            sketch.add(v)
        estimate = sketch.query(0.5)
        values.sort()
        import bisect
        n = len(values)
        # A duplicated value occupies a *range* of ranks; measure the
        # distance from the target rank to that interval.
        lo = bisect.bisect_left(values, estimate)
        hi = bisect.bisect_right(values, estimate)
        target = n / 2
        dist = 0.0 if lo <= target <= hi else min(abs(lo - target),
                                                  abs(hi - target))
        assert dist <= max(2, 3 * 0.1 * n)


class TestReservoirSample:
    def test_holds_everything_when_small(self):
        res = ReservoirSample(k=10)
        for v in range(5):
            res.add(v)
        assert sorted(res.sample) == [0, 1, 2, 3, 4]

    def test_size_bounded(self):
        res = ReservoirSample(k=10, rng=random.Random(0))
        for v in range(1000):
            res.add(v)
        assert len(res.sample) == 10

    def test_roughly_uniform(self):
        hits = [0] * 10
        for trial in range(300):
            res = ReservoirSample(k=3, rng=random.Random(trial))
            for v in range(10):
                res.add(v)
            for v in res.sample:
                hits[v] += 1
        # Each element expected in ~30% of trials => ~90 hits; allow slack.
        assert all(40 < h < 140 for h in hits), hits


class TestAccumulatorIntegration:
    def test_attach_and_feed(self, clf, rng):
        from repro.tools.datagen import clf_workload
        data = clf_workload(1000, rng, dash_rate=0.0)
        acc = Accumulator(clf.node("entry_t"))
        attach_summaries(acc, bins=16, eps=0.05)
        for rep, pd in clf.records(data, "entry_t"):
            acc.add(rep, pd)
        length = acc.field("length").self_acc
        assert length.summaries.quantiles.n == 1000
        assert len(length.summaries.histogram.counts()) <= 16
        median = length.summaries.quantiles.query(0.5)
        assert length.min <= median <= length.max
        report = length.summaries.report()
        assert "p50" in report and "#" in report

    def test_bad_values_not_fed(self, clf, rng):
        from repro.tools.datagen import clf_workload
        data = clf_workload(500, rng, dash_rate=0.2)
        acc = Accumulator(clf.node("entry_t"))
        attach_summaries(acc)
        for rep, pd in clf.records(data, "entry_t"):
            acc.add(rep, pd)
        length = acc.field("length").self_acc
        assert length.summaries.quantiles.n == length.good

    def test_array_lengths_summarised(self, sirius, rng):
        from repro.tools.datagen import sirius_workload
        body = sirius_workload(300, rng, syntax_errors=0,
                               sort_violations=0).split(b"\n", 1)[1]
        acc = Accumulator(sirius.node("entry_t"))
        attach_summaries(acc)
        for rep, pd in sirius.records(body, "entry_t"):
            acc.add(rep, pd)
        lengths = acc.field("events").lengths
        assert lengths.summaries.quantiles.n == 300
        assert lengths.summaries.quantiles.query(0.5) >= 1
