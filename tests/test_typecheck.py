"""Tests for description-level semantic analysis."""

import pytest

from repro.dsl.parser import parse_description
from repro.dsl.typecheck import TypeErrorReport, check_description


def check(text):
    check_description(parse_description(text))


def errors_of(text):
    with pytest.raises(TypeErrorReport) as err:
        check(text)
    return err.value.diagnostics


class TestNameResolution:
    def test_unknown_type(self):
        errs = errors_of("Pstruct p { Pnosuch x; };")
        assert any("unknown type 'Pnosuch'" in e for e in errs)

    def test_declare_before_use_enforced(self):
        errs = errors_of("""
          Pstruct p { later_t x; };
          Pstruct later_t { Puint8 y; };
        """)
        assert any("later_t" in e and "unknown type" in e for e in errs)

    def test_duplicate_type(self):
        errs = errors_of("Pstruct p { Puint8 x; }; Penum p { A };")
        assert any("duplicate declaration 'p'" in e for e in errs)

    def test_duplicate_field(self):
        errs = errors_of("Pstruct p { Puint8 x; Puint8 x; };")
        assert any("duplicate field 'x'" in e for e in errs)

    def test_duplicate_enum_literal_across_enums(self):
        errs = errors_of("Penum a { GET }; Penum b { GET };")
        assert any("redeclared" in e for e in errs)


class TestPythonKeywordReservation:
    def test_field_name(self):
        errs = errors_of("Pstruct p { Puint8 try; };")
        assert any("Python keyword" in e for e in errs)

    def test_type_name(self):
        errs = errors_of("Pstruct class { Puint8 x; };")
        assert any("Python keyword" in e for e in errs)

    def test_enum_literal(self):
        errs = errors_of("Penum m { GET, lambda };")
        assert any("Python keyword" in e for e in errs)

    def test_union_branch(self):
        errs = errors_of("Punion u { Puint8 pass; Pchar c; };")
        assert any("Python keyword" in e for e in errs)

    def test_function_and_params(self):
        errs = errors_of("bool import(int del) { return true; };")
        assert sum("Python keyword" in e for e in errs) == 2

    def test_non_keywords_fine(self):
        check("Pstruct p { Puint8 trying; Puint8 classes; };")


class TestArity:
    def test_base_type_arity(self):
        errs = errors_of("Pstruct p { Puint32(:3:) x; };")
        assert any("0 parameter" in e for e in errs)

    def test_missing_required_parameter(self):
        errs = errors_of("Pstruct p { Pstring x; };")
        assert any("1 parameter" in e for e in errs)

    def test_declared_type_arity(self):
        errs = errors_of("""
          Parray body_t(:int n:) { Puint8[n]; };
          Pstruct p { body_t xs; };
        """)
        assert any("takes 1 parameter" in e for e in errs)

    def test_correct_arity_accepted(self):
        check("""
          Parray body_t(:int n:) { Puint8[n]; };
          Pstruct p { Puint8 n; body_t(:n:) xs; };
        """)


class TestConstraintScoping:
    def test_later_field_not_in_scope(self):
        errs = errors_of("Pstruct p { Puint8 a : a < b; Puint8 b; };")
        assert any("unbound name 'b'" in e for e in errs)

    def test_field_itself_in_scope(self):
        check("Pstruct p { Puint8 a : a > 0; };")

    def test_earlier_fields_in_scope(self):
        check("Pstruct p { Puint8 a; Puint8 b : b >= a; };")

    def test_enum_literals_in_scope(self):
        check("Penum m { GET, PUT }; Pstruct p { m x : x == GET; };")

    def test_functions_in_scope(self):
        check("""
          bool ok(int x) { return x > 0; };
          Pstruct p { Puint8 a : ok(a); };
        """)

    def test_array_pseudo_vars(self):
        check("""
          Parray a { Puint8[] : Psep(',') && Plast(elts[length-1] == 0); }
          Pwhere { length < 100 };
        """)

    def test_pseudo_vars_not_leaked_to_structs(self):
        # `elts` is an array-only pseudo-variable; `length` by contrast is a
        # builtin function and resolves everywhere.
        errs = errors_of("Pstruct p { Puint8 a : elts[0] > 0; };")
        assert any("unbound name 'elts'" in e for e in errs)

    def test_forall_binds_its_variable(self):
        check("""
          Parray a { Puint8[] : Psep(','); }
          Pwhere { Pforall (i Pin [0..length-1] : elts[i] < 10) };
        """)

    def test_typedef_var_in_scope(self):
        check("Ptypedef Puint8 t : t x => { x > 0 };")

    def test_unbound_in_function_body(self):
        errs = errors_of("bool f(int a) { return a + zz > 0; };")
        assert any("unbound name 'zz'" in e for e in errs)

    def test_function_locals_bound(self):
        check("int f(int a) { int b = a; for (int i = 0; i < b; i += 1) b += i; return b; };")


class TestStructure:
    def test_empty_union_rejected(self):
        errs = errors_of("Punion u { };")
        assert any("empty Punion" in e for e in errs)

    def test_empty_enum_rejected(self):
        # An empty Penum cannot be expressed grammatically; a single item is fine.
        check("Penum m { ONLY };")

    def test_multiple_pdefault_rejected(self):
        errs = errors_of("""
          Punion u(:int t:) {
            Pswitch (t) {
              Pdefault: Puint8 a;
              Pdefault: Puint8 b;
            }
          };
        """)
        assert any("multiple Pdefault" in e for e in errs)

    def test_multiple_psource_rejected(self):
        errs = errors_of("""
          Psource Pstruct a { Puint8 x; };
          Psource Pstruct b { Puint8 y; };
        """)
        assert any("multiple Psource" in e for e in errs)

    def test_duplicate_params(self):
        errs = errors_of("Pstruct p(:int n, int n:) { Puint8 x; };")
        assert any("duplicate parameter" in e for e in errs)

    def test_params_usable_in_constraints(self):
        check("Pstruct p(:int limit:) { Puint32 x : x < limit; };")


class TestPaperDescriptionsCheck:
    def test_clf_checks(self):
        from repro import gallery
        check_description(parse_description(gallery.CLF))

    def test_sirius_checks(self):
        from repro import gallery
        check_description(parse_description(gallery.SIRIUS))
