"""Unit tests for the PADS description parser."""

import pytest

from repro.dsl import ast as D
from repro.dsl.parser import ParseError, parse_description
from repro.expr import ast as E


def parse_one(text):
    desc = parse_description(text)
    decls = [d for d in desc.decls]
    assert len(decls) == 1
    return decls[0]


class TestStruct:
    def test_simple_struct(self):
        d = parse_one("Pstruct p { Puint32 a; '|'; Puint32 b; };")
        assert isinstance(d, D.StructDecl)
        kinds = [type(i).__name__ for i in d.items]
        assert kinds == ["DataField", "LiteralField", "DataField"]
        assert d.data_fields()[0].name == "a"

    def test_string_literal_member(self):
        d = parse_one('Pstruct p { "HTTP/"; Puint8 major; };')
        lit = d.items[0]
        assert isinstance(lit, D.LiteralField)
        assert lit.literal.kind == "string"
        assert lit.literal.value == "HTTP/"

    def test_field_constraint(self):
        d = parse_one("Pstruct p { Puint8 x : x > 3; };")
        field = d.items[0]
        assert isinstance(field.constraint, E.Binary)
        assert field.constraint.op == ">"

    def test_parameterised_field_type(self):
        d = parse_one("Pstruct p { Pstring(:' ':) s; };")
        tref = d.items[0].type
        assert isinstance(tref, D.TypeRef)
        assert tref.name == "Pstring"
        assert isinstance(tref.args[0], E.CharLit)
        assert tref.args[0].value == " "

    def test_popt_field(self):
        d = parse_one("Pstruct p { Popt Puint32 x; };")
        assert isinstance(d.items[0].type, D.OptType)

    def test_annotations(self):
        d = parse_one("Precord Pstruct p { Puint8 x; };")
        assert d.is_record and not d.is_source
        d = parse_one("Psource Pstruct p { Puint8 x; };")
        assert d.is_source and not d.is_record

    def test_struct_params(self):
        d = parse_one("Pstruct p(:int n, int m:) { Pstring_FW(:n:) s; };")
        assert d.params == [("int", "n"), ("int", "m")]

    def test_compute_field(self):
        d = parse_one("Pstruct p { Puint8 a; Pcompute int twice = a * 2; };")
        comp = d.items[1]
        assert isinstance(comp, D.ComputeField)
        assert comp.name == "twice"

    def test_struct_where(self):
        d = parse_one("Pstruct p { Puint8 a; Puint8 b; } Pwhere { a <= b };")
        assert isinstance(d.where, E.Binary)

    def test_regex_literal_member(self):
        d = parse_one('Pstruct p { Pre "/[0-9]+/"; Puint8 x; };')
        assert d.items[0].literal.kind == "regex"
        assert d.items[0].literal.value == "[0-9]+"

    def test_regex_field_type(self):
        d = parse_one('Pstruct p { Pre "/a+/" s; };')
        assert isinstance(d.items[0].type, D.RegexType)
        assert d.items[0].type.pattern == "a+"


class TestUnion:
    def test_plain_union(self):
        d = parse_one("Punion u { Pip ip; Phostname host; };")
        assert isinstance(d, D.UnionDecl)
        assert [b.name for b in d.branches] == ["ip", "host"]
        assert not d.is_switched

    def test_branch_constraint(self):
        d = parse_one("Punion u { Pchar dash : dash == '-'; Pstring(:' ':) id; };")
        assert d.branches[0].constraint is not None

    def test_switched_union(self):
        d = parse_one("""
          Punion u(:int tag:) {
            Pswitch (tag) {
              Pcase 0: Puint32 num;
              Pcase 1: Pstring(:'|':) text;
              Pdefault: Pchar other;
            }
          };
        """)
        assert d.is_switched
        assert len(d.cases) == 3
        assert d.cases[0].value is not None
        assert d.cases[2].value is None
        assert d.cases[1].field.name == "text"


class TestArray:
    def test_array_with_sep_and_term(self):
        d = parse_one("Parray a { Puint32[] : Psep(',') && Pterm(Peor); };")
        assert isinstance(d, D.ArrayDecl)
        assert d.sep.kind == "char" and d.sep.value == ","
        assert d.term.kind == "eor"

    def test_fixed_size(self):
        d = parse_one("Parray a { Puint8[4]; };")
        assert isinstance(d.min_size, E.IntLit) and d.min_size.value == 4
        assert d.max_size.value == 4

    def test_size_range(self):
        d = parse_one("Parray a { Puint8[2..5]; };")
        assert d.min_size.value == 2 and d.max_size.value == 5

    def test_size_from_param(self):
        d = parse_one("Parray a(:int n:) { Puint8[n]; };")
        assert isinstance(d.min_size, E.Name)

    def test_where_clause(self):
        d = parse_one("""
          Parray a {
            Puint32[] : Psep('|') && Pterm(Peor);
          } Pwhere {
            Pforall (i Pin [0..length-2] : elts[i] <= elts[i+1]);
          };
        """)
        assert isinstance(d.where, E.Forall)

    def test_plast_pended_plongest(self):
        d = parse_one("Parray a { Puint8[] : Plongest && Plast(elts[length-1] == 0); };")
        assert d.longest
        assert d.last is not None
        d = parse_one("Parray a { Puint8[] : Pended(length >= 3); };")
        assert d.ended is not None

    def test_psep_requires_literal(self):
        with pytest.raises(ParseError):
            parse_one("Parray a { Puint8[] : Psep(Peor); };")


class TestEnumTypedefFunc:
    def test_enum(self):
        d = parse_one("Penum m { GET, PUT, POST };")
        assert [i.name for i in d.items] == ["GET", "PUT", "POST"]

    def test_enum_with_values_and_spelling(self):
        d = parse_one('Penum m { A = 10, B Pfrom("bee"), C };')
        assert d.items[0].value == 10
        assert d.items[1].physical == "bee"
        assert d.items[2].value is None

    def test_typedef_plain(self):
        d = parse_one("Ptypedef Puint32 id_t;")
        assert isinstance(d, D.TypedefDecl)
        assert d.constraint is None

    def test_typedef_with_constraint(self):
        d = parse_one(
            "Ptypedef Puint16_FW(:3:) response_t : "
            "response_t x => { 100 <= x && x < 600 };")
        assert d.var == "x"
        assert isinstance(d.constraint, E.Binary)

    def test_function(self):
        desc = parse_description("""
          bool chk(int a, int b) {
            if (a == b) return true;
            return false;
          };
        """)
        fns = desc.functions()
        assert "chk" in fns
        assert fns["chk"].params == [("int", "a"), ("int", "b")]

    def test_function_with_locals_and_loops(self):
        desc = parse_description("""
          int sumTo(int n) {
            int acc = 0;
            for (int i = 0; i < n; i += 1) acc += i;
            while (acc > 100) acc -= 100;
            return acc;
          };
        """)
        assert "sumTo" in desc.functions()


class TestExpressions:
    def parse_expr(self, text):
        d = parse_one(f"Pstruct p {{ Puint8 x : {text}; }};")
        return d.items[0].constraint

    def test_precedence(self):
        e = self.parse_expr("1 + 2 * 3 == 7")
        assert e.op == "=="
        assert e.left.op == "+"
        assert e.left.right.op == "*"

    def test_short_circuit_grouping(self):
        e = self.parse_expr("x > 1 && x < 5 || x == 0")
        assert e.op == "||"

    def test_ternary(self):
        e = self.parse_expr("x > 1 ? 1 : 0")
        assert isinstance(e, E.Ternary)

    def test_member_and_index(self):
        e = self.parse_expr("a.b[2].c == x")
        member = e.left
        assert isinstance(member, E.Member) and member.name == "c"
        assert isinstance(member.obj, E.Index)

    def test_call(self):
        e = self.parse_expr("chk(x, 3)")
        assert isinstance(e, E.Call)
        assert e.func == "chk" and len(e.args) == 2

    def test_unary(self):
        e = self.parse_expr("!(x == 1)")
        assert isinstance(e, E.Unary) and e.op == "!"

    def test_forall(self):
        e = self.parse_expr("Pforall (i Pin [0..3] : i >= 0)")
        assert isinstance(e, E.Forall)
        assert e.var == "i"

    def test_pexists(self):
        e = self.parse_expr("Pexists (i Pin [0..3] : i == x)")
        assert isinstance(e, E.Exists)


class TestDescriptionLevel:
    def test_source_defaults_to_last(self):
        desc = parse_description(
            "Pstruct a { Puint8 x; }; Pstruct b { Puint8 y; };")
        assert desc.source.name == "b"

    def test_explicit_source_wins(self):
        desc = parse_description(
            "Psource Pstruct a { Puint8 x; }; Pstruct b { Puint8 y; };")
        assert desc.source.name == "a"

    def test_errors_carry_location(self):
        with pytest.raises(ParseError) as err:
            parse_description("Pstruct { Puint8 x; };")
        assert "line" in str(err.value)

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_description("Pstruct p { Puint8 x };")
