"""Extra edge-case coverage for streams, masks and the expression layer
uncovered while reviewing the modules (kept separate from the main test
files so each stays focused)."""

import io
import random

import pytest

from repro import (
    ErrCode,
    Mask,
    P_Check,
    P_CheckAndSet,
    P_Ignore,
    compile_description,
    gallery,
)
from repro.core.io import FixedWidthRecords, NewlineRecords, Source


class TestSourceEdgeCases:
    def test_empty_input_has_no_records(self):
        src = Source.from_bytes(b"", NewlineRecords())
        assert not src.begin_record()
        assert src.at_eof()

    def test_lone_newline_is_one_empty_record(self):
        src = Source.from_bytes(b"\n", NewlineRecords())
        assert src.begin_record()
        assert src.record_bytes() == b""
        src.end_record()
        assert not src.begin_record()

    def test_take_until_multibyte_needle(self):
        src = Source.from_bytes(b"aaa<->bbb")
        assert src.take_until(b"<->") == b"aaa"
        assert src.match_bytes(b"<->")
        assert src.take_rest() == b"bbb"

    def test_scan_bounded_by_record(self):
        src = Source.from_bytes(b"abc\nX\n", NewlineRecords())
        src.begin_record()
        assert src.scan_for(b"X") == -1  # X lives in the next record

    def test_first_byte_respects_record_end(self):
        src = Source.from_bytes(b"a\nb\n", NewlineRecords())
        src.begin_record()
        assert src.first_byte() == ord("a")
        src.skip(1)
        assert src.first_byte() == -1  # at EOR, not 'b'

    def test_restore_across_record_boundary(self):
        src = Source.from_bytes(b"one\ntwo\n", NewlineRecords())
        state = src.mark()
        src.begin_record()
        src.end_record()
        src.begin_record()
        src.restore(state)
        assert not src.in_record
        assert src.begin_record()
        assert src.record_bytes() == b"one"

    def test_stream_in_fixed_records(self):
        data = b"".join(bytes([i % 256]) * 4 for i in range(5000))
        src = Source(stream=io.BytesIO(data), discipline=FixedWidthRecords(4))
        n = 0
        while src.begin_record():
            n += 1
            src.end_record()
        assert n == 5000


class TestParseEdgeCases:
    def test_empty_record_with_all_optional_fields(self):
        d = compile_description("""
            Precord Pstruct r {
                Popt Puint32 a; '|'; Popt Puint32 b;
            };
        """)
        rep, pd = d.parse(b"|\n", "r")
        assert pd.nerr == 0
        assert rep.a is None and rep.b is None

    def test_record_of_just_a_literal(self):
        d = compile_description('Precord Pstruct r { "MARKER"; };')
        out = list(d.records(b"MARKER\nMARKER\nnope\n", "r"))
        assert [pd.nerr == 0 for _, pd in out] == [True, True, False]

    def test_deeply_nested_structs(self):
        d = compile_description("""
            Pstruct l3 { Puint8 x; };
            Pstruct l2 { l3 a; ':'; l3 b; };
            Pstruct l1 { l2 p; ';'; l2 q; };
            Precord Pstruct top { l1 v; };
        """)
        rep, pd = d.parse(b"1:2;3:4\n", "top")
        assert pd.nerr == 0
        assert (rep.v.p.a.x, rep.v.p.b.x, rep.v.q.a.x, rep.v.q.b.x) == (1, 2, 3, 4)

    def test_union_of_unions(self):
        d = compile_description("""
            Punion inner { Pip ip; Pzip zip; };
            Punion outer { inner structured; Pstring(:'!':) free; };
            Precord Pstruct r { outer v; '!'; };
        """)
        rep, pd = d.parse(b"07988!\n", "r")
        assert rep.v.tag == "structured"
        assert rep.v.value.tag == "zip"
        rep, pd = d.parse(b"whatever!\n", "r")
        assert rep.v.tag == "free"

    def test_array_of_unions(self):
        d = compile_description("""
            Punion item { Puint32 n; Pstring(:',':) s; };
            Precord Parray xs { item[] : Psep(',') && Pterm(Peor); };
        """)
        rep, pd = d.parse(b"1,two,3\n", "xs")
        assert [e.tag for e in rep] == ["n", "s", "n"]

    def test_zero_length_fixed_array(self):
        from repro.dsl.typecheck import TypeErrorReport
        d = compile_description("Parray xs { Puint8[0]; };")
        rep, pd = d.parse(b"anything", "xs")
        assert rep == [] and pd.nerr == 0

    def test_ignore_mask_reports_nothing(self, clf):
        bad = gallery.CLF_SAMPLE.replace(" 200 30", " 999 -")
        out = list(clf.records(bad, "entry_t", Mask(P_Ignore)))
        # P_Ignore has neither SYN nor SEM checking; only hard syntax
        # failures that block progress are ever visible, and this record's
        # errors are value-level.
        assert out[0][1].nerr <= 2

    def test_check_without_set_leaves_defaults(self):
        d = compile_description("Precord Pstruct r { Puint32 a; };")
        rep, pd = d.parse(b"42\n", "r", Mask(P_Check))
        assert pd.nerr == 0
        assert rep.a == 0  # parsed, validated, not materialised


class TestExprEdgeCases:
    def test_member_on_union_in_constraint(self):
        d = compile_description("""
            Punion u { Puint32 num; Pchar c; };
            Precord Pstruct r {
                u v; '!';
                Puint8 n : v.num > 0 || n > 0;
            };
        """)
        _, pd = d.parse(b"5!1\n", "r")
        assert pd.nerr == 0
        # v is the char branch: v.num raises inside the constraint, which
        # counts as a violation rather than a crash.
        _, pd = d.parse(b"x!0\n", "r")
        assert pd.nerr == 1

    def test_constraint_division_by_zero_is_violation(self):
        d = compile_description("""
            Precord Pstruct r { Puint32 a; '|'; Puint32 b : a / b >= 0; };
        """)
        _, pd = d.parse(b"4|2\n", "r")
        assert pd.nerr == 0
        _, pd = d.parse(b"4|0\n", "r")
        assert pd.fields["b"].err_code == ErrCode.USER_CONSTRAINT_VIOLATION

    def test_pexists_in_where(self):
        d = compile_description("""
            Precord Parray xs {
                Puint8[] : Psep(',') && Pterm(Peor);
            } Pwhere { Pexists (i Pin [0..length-1] : elts[i] == 0) };
        """)
        _, pd = d.parse(b"5,0,9\n", "xs")
        assert pd.nerr == 0
        _, pd = d.parse(b"5,1,9\n", "xs")
        assert pd.err_code == ErrCode.WHERE_CLAUSE_VIOLATION
