"""Tests for ``repro.batch`` — the vectorized batch engine.

The batch engine's whole contract is "faster, never different": for
plan-proven column-regular descriptions it must yield the identical
``(rep, pd)`` stream — values, parse descriptors, error locations,
accumulators and deterministic metrics (modulo the ``batch.*``
counters) — that the cursor engines produce, and fall back to them
per-record wherever the grid assumption breaks.  This suite pins:

* the eligibility verdicts (engine- and plan-level) and their reasons;
* eligibility edges: zero-width ``Pcompute`` fields, nested fixed
  arrays, cp037/EBCDIC columns, width-mismatched disciplines;
* differential equality against serial, parallel and streaming cursor
  runs on clean, constraint-violating (fallback-forcing) and truncated
  inputs, through both the interpreted and generated engines;
* the newline-pitch grid: CRLF terminators, ragged lines, unterminated
  tails;
* the strict (``--engine batch``) contract and the counting floor;
* the worker-window helpers ``repro.parallel`` delegates to;
* a hypothesis sweep hammering random corruption, when available.
"""

import random

import pytest

from repro import compile_description, gallery, observe
from repro.batch import (
    accumulate_batch,
    batch_verdict,
    count_records_batch,
    records_batch,
    window_count,
    window_records,
)
from repro.codegen import compile_generated
from repro.core.errors import ErrorTally, PadsError
from repro.core.io import FixedWidthRecords, NewlineRecords
from repro.plan import format_plan
from repro.tools.datagen import call_detail_workload

from .test_codegen import pd_summary
from .test_plan import EBCDIC_DESC

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:
    HAVE_HYPOTHESIS = False

WIDTH = 24            # call_t static width
CALL_TYPE_OFF = 22    # call_type column: Ptypedef constraint t <= 4

#: Stats sections that legitimately differ between the engines: wall
#: clock (latency/throughput) and the batch engine's own counters.
_ENGINE_LOCAL = ("latency", "throughput", "batch")


def _scrub(stats: dict) -> dict:
    return {k: v for k, v in stats.items() if k not in _ENGINE_LOCAL}


def _fingerprint(pairs):
    """Everything the fallback contract promises is byte-identical."""
    return [(rep, pd_summary(pd), str(pd.loc)) for rep, pd in pairs]


def _assert_same_stream(got, want):
    got, want = list(got), list(want)
    assert [r for r, _ in got] == [r for r, _ in want]
    assert _fingerprint(got) == _fingerprint(want)


def _tally_fields(tally: ErrorTally):
    doc = []
    for name in ErrorTally.__slots__:
        value = getattr(tally, name)
        doc.append((name, str(value) if name == "first_error_loc" else value))
    return doc


def clean_data(n: int) -> bytes:
    return call_detail_workload(n, random.Random(13))


def dirty_data(n: int, every: int = 37) -> bytes:
    """Clean workload with every ``every``-th call_type forced over the
    ``t <= 4`` constraint — the kernel must hand exactly those records
    to the cursor."""
    raw = bytearray(clean_data(n))
    for i in range(0, n, every):
        raw[i * WIDTH + CALL_TYPE_OFF] = 99
    return bytes(raw)


@pytest.fixture(scope="module", params=["interp", "gen"])
def cd(request):
    disc = FixedWidthRecords(WIDTH)
    if request.param == "interp":
        return compile_description(gallery.CALL_DETAIL, ambient="binary",
                                   discipline=disc)
    return compile_generated(gallery.CALL_DETAIL, ambient="binary",
                             discipline=disc)


# ---------------------------------------------------------------------------
# Verdicts: plan pass, engine gate, pretty-printer
# ---------------------------------------------------------------------------


class TestVerdicts:
    def test_call_detail_is_eligible(self, cd):
        v = batch_verdict(cd, "call_t")
        assert v.eligible
        assert "24-byte columns at 24-byte pitch" in v.reason

    def test_plan_level_verdict(self, cd):
        v = cd.plan.decl("call_t").batch_verdict
        assert v.eligible
        assert "columnar kernel" in v.reason

    def test_clf_is_not_eligible(self, clf):
        v = batch_verdict(clf, "entry_t")
        assert not v.eligible
        assert "not static" in v.reason

    def test_width_mismatched_discipline(self):
        d = compile_description(gallery.CALL_DETAIL, ambient="binary",
                                discipline=FixedWidthRecords(WIDTH - 1))
        v = batch_verdict(d, "call_t")
        assert not v.eligible
        assert "static record width 24" in v.reason

    def test_fastpath_off_disables_kernels(self):
        d = compile_description(gallery.CALL_DETAIL, ambient="binary",
                                discipline=FixedWidthRecords(WIDTH),
                                fastpath=False)
        v = batch_verdict(d, "call_t")
        assert not v.eligible
        assert "disabled" in v.reason
        # ...but the plan-level layout verdict is engine-independent.
        assert d.plan.decl("call_t").batch_verdict.eligible

    def test_plan_printer_shows_the_verdict(self, cd):
        text = format_plan(cd.plan, "call_t")
        assert "batch: eligible" in text

    def test_kernel_reports_misses(self, cd):
        """The kernel contract: ``(reps, miss)`` with ``miss`` counting
        the None (fallback) slots, so the driver never scans for them."""
        width, kernel = cd.batch_kernel("call_t")
        assert width == WIDTH
        data = dirty_data(64, every=8)
        reps, miss = kernel(memoryview(data), 64, WIDTH, True)
        assert len(reps) == 64
        assert miss == sum(1 for r in reps if r is None) == 8


# ---------------------------------------------------------------------------
# Eligibility edges: zero-width fields, nested arrays, EBCDIC
# ---------------------------------------------------------------------------


ZERO_WIDTH_DESC = """
Precord Pstruct z_t {
  Pb_uint16 a;
  Pb_uint16 b;
  Pcompute Pint32 total = a + 1;
};
Psource Parray zs_t { z_t[]; };
"""

NESTED_ARRAY_DESC = """
Parray triple_t { Pb_uint16[3]; };
Precord Pstruct point_t {
  Pb_uint8 id;
  triple_t xs;
};
Psource Parray points_t { point_t[]; };
"""


class TestEligibilityEdges:
    def test_zero_width_compute_field(self):
        d = compile_description(ZERO_WIDTH_DESC, ambient="binary",
                                discipline=FixedWidthRecords(4))
        v = batch_verdict(d, "z_t")
        assert v.eligible, v.reason
        data = bytes(range(64)) * 4
        got = list(d.records_batch(data, "z_t"))
        _assert_same_stream(got, d.records(data, "z_t"))
        assert all(rep.total == rep.a + 1 for rep, _ in got)

    def test_nested_fixed_array(self):
        d = compile_description(NESTED_ARRAY_DESC, ambient="binary",
                                discipline=FixedWidthRecords(7))
        v = batch_verdict(d, "point_t")
        assert v.eligible, v.reason
        data = bytes(range(256))[:7 * 30]
        got = list(d.records_batch(data, "point_t"))
        _assert_same_stream(got, d.records(data, "point_t"))
        assert all(len(rep.xs) == 3 for rep, _ in got)

    @pytest.mark.parametrize("engine", [compile_description, compile_generated])
    def test_ebcdic_columns(self, engine):
        width = 15
        disc = FixedWidthRecords(width)
        d = engine(EBCDIC_DESC, ambient="ebcdic", discipline=disc)
        v = batch_verdict(d, "item_t")
        assert v.eligible, v.reason
        writer = compile_description(EBCDIC_DESC, ambient="ebcdic",
                                     discipline=disc)
        rng = random.Random(2005)
        reps = [writer.generate("item_t", rng) for _ in range(40)]
        data = b"".join(writer.write(r, "item_t") for r in reps)
        got = list(d.records_batch(data, "item_t"))
        assert [r for r, _ in got] == reps
        _assert_same_stream(got, d.records(data, "item_t"))
        # Corruption inside the zoned column falls back identically.
        raw = bytearray(data)
        raw[3 * width + 8] = 0x40
        _assert_same_stream(d.records_batch(bytes(raw), "item_t"),
                            d.records(bytes(raw), "item_t"))


# ---------------------------------------------------------------------------
# Differential: batch ≡ cursor on clean, dirty and truncated input
# ---------------------------------------------------------------------------


class TestDifferential:
    def test_clean(self, cd):
        data = clean_data(3000)
        _assert_same_stream(cd.records_batch(data, "call_t"),
                            cd.records(data, "call_t"))

    def test_constraint_violations_fall_back(self, cd):
        data = dirty_data(2000)
        got = list(cd.records_batch(data, "call_t"))
        bad = sum(1 for _, pd in got if pd.nerr)
        assert bad >= 2000 // 37  # the corruption actually bit
        _assert_same_stream(got, cd.records(data, "call_t"))

    def test_truncated_final_record(self, cd):
        data = clean_data(1500)[:1499 * WIDTH + 11]
        _assert_same_stream(cd.records_batch(data, "call_t"),
                            cd.records(data, "call_t"))

    def test_small_chunks_preserve_offsets(self, cd):
        """Feeding the grid in tiny record-aligned chunks must not
        disturb absolute locations or record indices."""
        import io
        data = dirty_data(400)
        got = list(records_batch(cd, io.BytesIO(data), "call_t",
                                 chunk_bytes=7 * WIDTH))
        _assert_same_stream(got, cd.records(data, "call_t"))

    def test_deterministic_stats_match(self, cd):
        data = dirty_data(800)
        with observe.observed() as obs_s:
            for _ in cd.records(data, "call_t"):
                pass
        with observe.observed() as obs_b:
            for _ in cd.records_batch(data, "call_t"):
                pass
        assert (_scrub(obs_b.stats(deterministic=True))
                == _scrub(obs_s.stats(deterministic=True)))

    def test_batch_metrics_account_for_every_record(self, cd):
        data = dirty_data(800)
        with observe.observed() as obs:
            total = sum(1 for _ in cd.records_batch(data, "call_t"))
        s = obs.stats(deterministic=True)
        assert s["batch"]["batches"] > 0
        assert s["batch"]["bytes"] > 0
        assert s["batch"]["fallback_records"] > 0
        assert (s["batch"]["records"] + s["batch"]["fallback_records"]
                == s["records"]["total"] == total == 800)
        assert "batch:" in obs.summary()

    def test_accumulate_batch(self, cd):
        data = dirty_data(600)
        acc_b, tally_b = cd.accumulate_batch(data, "call_t")
        from repro.tools.accum import Accumulator
        acc_s = Accumulator(cd.node("call_t"), "<top>", 1000)
        tally_s = ErrorTally()
        for rep, pd in cd.records(data, "call_t"):
            acc_s.add(rep, pd)
            tally_s.add(pd)
        assert _tally_fields(tally_b) == _tally_fields(tally_s)
        assert acc_b.report() == acc_s.report()

    def test_flyweight_pds_are_clean(self, cd):
        """Unmetered clean windows share one flyweight Pd; it must be
        content-identical to a fresh descriptor."""
        from repro.core.errors import Pd
        data = clean_data(200)
        fresh = pd_summary(Pd())
        for _, pd in cd.records_batch(data, "call_t"):
            assert pd_summary(pd) == fresh


# ---------------------------------------------------------------------------
# Newline-pitch grids
# ---------------------------------------------------------------------------


ROW_DESC = """
Precord Pstruct row_t {
  Pstring_FW(:3:) tag;
  '|';
  Puint32_FW(:4:) n;
};
Psource Parray rows_t { row_t[]; };
"""


class TestNewlineGrid:
    @pytest.fixture(scope="class")
    def rows(self):
        return compile_description(ROW_DESC, discipline=NewlineRecords())

    def test_eligible_at_width_plus_one_pitch(self, rows):
        v = batch_verdict(rows, "row_t")
        assert v.eligible
        assert "8-byte columns at 9-byte pitch" in v.reason

    @pytest.mark.parametrize("blob", [
        b"abc|0001\nxyz|0042\npqr|9999\n",       # clean grid
        b"abc|0001\r\nxyz|0042\r\n",             # CRLF: cursor fallback
        b"abc|0001\nlong-line|123\nxyz|0042\n",  # ragged tear mid-grid
        b"abc|0001\nxyz|0042",                   # unterminated tail
        b"",
    ])
    def test_differential(self, rows, blob):
        _assert_same_stream(rows.records_batch(blob, "row_t"),
                            rows.records(blob, "row_t"))

    @pytest.mark.parametrize("blob", [
        b"abc|0001\nxyz|0042\npqr|9999\n",
        b"abc|0001\r\nxyz|0042\r\n",
        b"abc|0001\nxyz|0042",
        b"",
    ])
    def test_count_parity(self, rows, blob):
        assert rows.count_records_batch(blob) == rows.count_records(blob)


# ---------------------------------------------------------------------------
# Strict mode, fallback inputs, counting
# ---------------------------------------------------------------------------


class TestStrictAndCount:
    def test_strict_raises_at_call_time(self, clf):
        with pytest.raises(PadsError, match="batch engine"):
            records_batch(clf, b"x\n", "entry_t", strict=True)

    def test_silent_fallback_matches_serial(self, clf, rng):
        reps = [clf.generate("entry_t", rng) for _ in range(10)]
        data = b"".join(clf.write(r, "entry_t") + b"\n" for r in reps)
        _assert_same_stream(records_batch(clf, data, "entry_t"),
                            clf.records(data, "entry_t"))

    def test_open_source_keeps_cursor_path(self, cd):
        data = clean_data(50)
        src = cd.open_bytes(data) if hasattr(cd, "open_bytes") else None
        if src is None:
            from repro.core.io import Source
            src = Source(data, discipline=cd.discipline)
        with pytest.raises(PadsError, match="cannot feed"):
            records_batch(cd, src, "call_t", strict=True)

    def test_count_parity_fixed_width(self, cd, tmp_path):
        data = clean_data(700)
        assert cd.count_records_batch(data) == 700
        truncated = data[:699 * WIDTH + 3]
        assert (cd.count_records_batch(truncated)
                == cd.count_records(truncated) == 700)
        assert cd.count_records_batch(b"") == 0
        path = tmp_path / "cd.dat"
        path.write_bytes(data)
        assert cd.count_records_batch(path) == 700

    def test_count_strict(self, cd):
        d = compile_description(gallery.CALL_DETAIL, ambient="binary",
                                discipline=FixedWidthRecords(WIDTH))
        from repro.core.limits import ParseLimits
        limited = compile_description(
            gallery.CALL_DETAIL, ambient="binary",
            discipline=FixedWidthRecords(WIDTH),
            limits=ParseLimits(max_record_bytes=1 << 16))
        assert d.count_records_batch(clean_data(10)) == 10
        with pytest.raises(PadsError, match="limits"):
            count_records_batch(limited, clean_data(10), strict=True)


# ---------------------------------------------------------------------------
# Worker-window helpers (the parallel engine's handoff)
# ---------------------------------------------------------------------------


class TestWindows:
    def test_bytes_window_is_chunk_local(self, cd):
        data = dirty_data(300)
        lo, hi = 100, 220
        window = ("bytes", data[lo * WIDTH:hi * WIDTH], lo * WIDTH)
        got = list(window_records(cd, window, "call_t"))
        want = list(cd.records(data, "call_t"))[lo:hi]
        assert [r for r, _ in got] == [r for r, _ in want]
        # Fallback pds carry chunk-local record indices (the parallel
        # reduce rebases them) but absolute byte offsets.
        bad = [(i, pd) for i, (_, pd) in enumerate(got) if pd.nerr]
        assert bad
        for i, pd in bad:
            assert pd.loc.record == i
            assert want[i][1].loc.record == lo + i
            assert pd.loc.offset == want[i][1].loc.offset

    def test_file_window(self, cd, tmp_path):
        data = clean_data(500)
        path = tmp_path / "cd.dat"
        path.write_bytes(data)
        window = ("file", str(path), 200 * WIDTH, 450 * WIDTH)
        got = list(window_records(cd, window, "call_t"))
        want = list(cd.records(data, "call_t"))[200:450]
        assert [r for r, _ in got] == [r for r, _ in want]

    def test_window_count(self, cd, tmp_path):
        data = clean_data(123)
        assert window_count(cd, ("bytes", data, 0)) == 123
        path = tmp_path / "cd.dat"
        path.write_bytes(data)
        assert window_count(cd, ("file", str(path), 0, len(data))) == 123
        assert window_count(cd, ("file", str(path), 0, 10 * WIDTH + 1)) == 11

    def test_ineligible_returns_none(self, clf):
        assert window_records(clf, ("bytes", b"x\n", 0), "entry_t") is None


# ---------------------------------------------------------------------------
# Integration: the parallel and streaming engines take the batch path
# ---------------------------------------------------------------------------


class TestEngineIntegration:
    def test_parallel_matches_batch_and_serial(self, call_detail, tmp_path):
        from repro.parallel import parallel_count, parallel_records
        data = dirty_data(2000)
        want = _fingerprint(call_detail.records(data, "call_t"))
        assert _fingerprint(
            parallel_records(call_detail, data, "call_t", jobs=2)) == want
        path = tmp_path / "cd.dat"
        path.write_bytes(data)
        assert _fingerprint(
            parallel_records(call_detail, path, "call_t", jobs=2)) == want
        assert parallel_count(call_detail, path, jobs=2) == 2000

    def test_stream_hands_off_to_batch(self, call_detail, tmp_path):
        data = dirty_data(1500)
        path = tmp_path / "cd.dat"
        path.write_bytes(data)
        with observe.observed() as obs:
            got = list(call_detail.records_stream(str(path), "call_t"))
        _assert_same_stream(got, call_detail.records(data, "call_t"))
        s = obs.stats(deterministic=True)
        # The grid driver replaced the sliding window entirely.
        assert s["batch"]["batches"] > 0
        assert s["stream"]["refills"] == 0
        assert call_detail.count_records_stream(str(path)) == 1500

    def test_follow_keeps_the_cursor_path(self, call_detail, tmp_path):
        data = clean_data(40)
        path = tmp_path / "cd.dat"
        path.write_bytes(data)
        with observe.observed() as obs:
            got = list(call_detail.records_stream(
                str(path), "call_t", follow=True, idle_timeout=0.1))
        assert len(got) == 40
        assert obs.stats(deterministic=True)["batch"]["batches"] == 0


# ---------------------------------------------------------------------------
# Hypothesis: random corruption anywhere must never open a gap
# ---------------------------------------------------------------------------


if HAVE_HYPOTHESIS:

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1),
           hits=st.lists(st.tuples(st.integers(0, 120 * WIDTH - 1),
                                   st.integers(0, 255)),
                         max_size=12),
           trunc=st.integers(0, WIDTH))
    def test_hypothesis_differential(seed, hits, trunc):
        d = gallery.load_call_detail()
        raw = bytearray(call_detail_workload(120, random.Random(seed)))
        for off, val in hits:
            raw[off] = val
        data = bytes(raw[:len(raw) - trunc])
        got = list(d.records_batch(data, "call_t"))
        want = list(d.records(data, "call_t"))
        assert [r for r, _ in got] == [r for r, _ in want]
        assert _fingerprint(got) == _fingerprint(want)
