"""Tests for delimited formatting (paper Section 5.3.1 / Figure 8)."""

import pytest

from repro import Mask, P_CheckAndSet, P_Ignore, compile_description, gallery
from repro.tools.fmt import format_records, format_value


class TestFigure8:
    def test_clf_formatting_matches_paper(self, clf):
        """Delimiter "|" + date format "%D:%T" over Figure 2's data must
        yield exactly Figure 8's output."""
        lines = list(format_records(clf, gallery.CLF_SAMPLE, "entry_t",
                                    delims=["|"], date_format="%D:%T"))
        assert "\n".join(lines) + "\n" == gallery.CLF_FORMATTED


class TestFormatValue:
    DESC = """
      Punion who_t { Pip ip; Pstring(:' ':) name; };
      Pstruct inner_t { Puint8 x; ','; Puint8 y; };
      Pstruct rec_t {
        who_t who; ' ';
        inner_t pos; ' ';
        Popt Puint32 size;
      };
    """

    @pytest.fixture(scope="class")
    def d(self):
        return compile_description(self.DESC)

    def test_flattening(self, d):
        rep, _ = d.parse(b"1.2.3.4 7,9 42", "rec_t")
        assert format_value(d.node("rec_t"), rep) == "1.2.3.4|7|9|42"

    def test_nested_delimiters_advance(self, d):
        rep, _ = d.parse(b"1.2.3.4 7,9 42", "rec_t")
        text = format_value(d.node("rec_t"), rep, delims=["|", ";"])
        # Nested struct fields use the second delimiter.
        assert text == "1.2.3.4|7;9|42"

    def test_last_delimiter_reused_when_exhausted(self, d):
        rep, _ = d.parse(b"1.2.3.4 7,9 42", "rec_t")
        assert format_value(d.node("rec_t"), rep, delims=["|"]) == "1.2.3.4|7|9|42"

    def test_opt_none_renders_empty(self, d):
        rep, _ = d.parse(b"1.2.3.4 7,9 ", "rec_t")
        assert format_value(d.node("rec_t"), rep) == "1.2.3.4|7|9|"

    def test_none_text_customisable(self, d):
        rep, _ = d.parse(b"1.2.3.4 7,9 ", "rec_t")
        assert format_value(d.node("rec_t"), rep,
                            none_text="NONE").endswith("|NONE")

    def test_mask_suppresses_fields(self, d):
        rep, _ = d.parse(b"1.2.3.4 7,9 42", "rec_t")
        mask = Mask(P_CheckAndSet).with_field("pos", Mask(P_Ignore))
        assert format_value(d.node("rec_t"), rep, mask=mask) == "1.2.3.4|42"

    def test_custom_formatter(self, d):
        rep, _ = d.parse(b"1.2.3.4 7,9 42", "rec_t")
        custom = {"inner_t": lambda v: f"({v.x},{v.y})"}
        assert format_value(d.node("rec_t"), rep,
                            custom=custom) == "1.2.3.4|(7,9)|42"

    def test_union_formats_active_branch(self, d):
        rep, _ = d.parse(b"wally 7,9 1", "rec_t")
        assert format_value(d.node("rec_t"), rep).startswith("wally|")


class TestFormatRecords:
    def test_skip_errors(self, clf):
        bad = gallery.CLF_SAMPLE.replace(" 200 30", " 200 -")
        lines = list(format_records(clf, bad, "entry_t", skip_errors=True))
        assert len(lines) == 1

    def test_arrays_flatten(self, sirius):
        body = gallery.SIRIUS_SAMPLE.split("\n", 1)[1]
        lines = list(format_records(sirius, body, "entry_t"))
        assert lines[1].endswith("LOC_CRTE|1001476800|LOC_OS_10|1001649601")
        # Formatted output with '|' equals the raw pipe-separated data here.
        assert lines[1].startswith("9153|9153|1|0|0|0|0|")
