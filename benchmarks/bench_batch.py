#!/usr/bin/env python
"""Batch engine: cursor vs columnar-kernel throughput on call-detail.

The batch engine's acceptance bar is a measured one: on a plan-proven
fixed-width gallery entry (the call-detail stream, 24-byte records) the
grid driver must parse at least **5x** the records/second of the PR-5
cursor engines.  This bench times both paths through both engines
(interpreted and generated), plus the record-counting floor, and writes
the results to ``BENCH_batch.json`` for ``check_plan_regression.py``
to gate.

Methodology notes (they matter at these speeds):

* every iteration drains through ``collections.deque(it, maxlen=0)`` —
  a C-level sink, so the harness measures the engines, not a Python
  ``for`` loop;
* one warm-up run per timer before measuring (the first kernel call
  pays ``struct.Struct`` compilation and code-object warm-up);
* best of ``PADS_BENCH_REPEATS`` runs (default 7) — the minimum is the
  run least disturbed by scheduler noise, which is what a throughput
  *ratio* gate needs to be reproducible on shared CI machines.

Scale with ``PADS_BENCH_RECORDS`` (default 20000; CI smoke uses 2000).

Run: ``python benchmarks/bench_batch.py [output.json]``
"""

import json
import os
import random
import sys
import time
from collections import deque

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import gallery  # noqa: E402
from repro.batch import batch_verdict  # noqa: E402
from repro.codegen import compile_generated  # noqa: E402
from repro.core.io import FixedWidthRecords  # noqa: E402
from repro.tools.datagen import call_detail_workload  # noqa: E402

WIDTH = 24


def best_seconds(fn, repeats: int) -> float:
    fn()  # warm-up: kernel compilation, caches, branch warm paths
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def drain(iterable) -> None:
    deque(iterable, maxlen=0)


def main() -> int:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_batch.json"
    n = int(os.environ.get("PADS_BENCH_RECORDS", "20000"))
    repeats = int(os.environ.get("PADS_BENCH_REPEATS", "7"))
    data = call_detail_workload(n, random.Random(13))

    disc = FixedWidthRecords(WIDTH)
    engines = {
        "interp": gallery.load_call_detail(),
        "gen": compile_generated(gallery.CALL_DETAIL, ambient="binary",
                                 discipline=disc),
    }

    from conftest import machine_line
    doc = {"machine": machine_line(),
           "records": n, "bytes": len(data), "repeats": repeats,
           "engines": {}}
    for name, d in engines.items():
        verdict = batch_verdict(d, "call_t")
        assert verdict.eligible, verdict.reason
        cursor_s = best_seconds(
            lambda d=d: drain(d.records(data, "call_t")), repeats)
        batch_s = best_seconds(
            lambda d=d: drain(d.records_batch(data, "call_t")), repeats)
        doc["engines"][name] = {
            "cursor_seconds": round(cursor_s, 6),
            "batch_seconds": round(batch_s, 6),
            "cursor_records_per_sec": round(n / cursor_s, 1),
            "batch_records_per_sec": round(n / batch_s, 1),
            "speedup": round(cursor_s / batch_s, 3),
        }

    interp = engines["interp"]
    count_cursor = best_seconds(
        lambda: interp.count_records(data), repeats)
    count_batch = best_seconds(
        lambda: interp.count_records_batch(data), repeats)
    doc["count"] = {
        "cursor_seconds": round(count_cursor, 6),
        "batch_seconds": round(count_batch, 6),
        "speedup": round(count_cursor / count_batch, 1),
    }

    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)

    print(f"call-detail, {n} records x {repeats} runs (best):")
    for name, e in doc["engines"].items():
        print(f"  {name:6s} cursor {e['cursor_records_per_sec']:>12,.0f} rec/s"
              f"   batch {e['batch_records_per_sec']:>12,.0f} rec/s"
              f"   -> {e['speedup']:.2f}x")
    print(f"  count  {doc['count']['speedup']:.0f}x "
          f"(arithmetic vs record framing)")
    print(f"wrote {out_path}")

    # Sanity, not the gate (check_plan_regression.py owns the gate):
    # both paths must agree on the record count.
    total_b = sum(1 for _ in interp.records_batch(data, "call_t"))
    assert total_b == n, (total_b, n)
    return 0


if __name__ == "__main__":
    sys.exit(main())
