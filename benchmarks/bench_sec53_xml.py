"""Section 5.3.2: XML conversion and XML Schema generation.

Prints the eventSeq schema fragment the paper shows, checks that buggy
records embed their parse descriptors in the XML, and benchmarks the
conversion program's throughput.
"""

import random
import xml.etree.ElementTree as ET

import pytest

from repro import gallery
from repro.tools.datagen import sirius_workload
from repro.tools.xml_out import xml_records
from repro.tools.xsd import schema_for_type

N = 5000


def test_print_eventseq_schema(sirius_interp, capsys):
    fragment = schema_for_type("eventSeq", sirius_interp.node("eventSeq"))
    # The element list must match the paper's printed fragment.
    for element in ("pstate", "nerr", "errCode", "loc", "neerr",
                    "firstError", "elt", "length", "pd"):
        assert f'name="{element}"' in fragment
    with capsys.disabled():
        print()
        print(fragment)


def test_buggy_data_embeds_pd(sirius_interp):
    data = sirius_workload(500, random.Random(11)).split(b"\n", 1)[1]
    doc = "\n".join(xml_records(sirius_interp, data, "entry_t"))
    root = ET.fromstring(doc)
    assert len(root.findall("entry_t")) == 500
    pds = root.findall(".//pd")
    assert pds, "error records must carry parse descriptors"


@pytest.mark.benchmark(group="sec53-xml")
def test_xml_conversion_throughput(benchmark, sirius_gen):
    data = sirius_workload(N, random.Random(12),
                           syntax_errors=0, sort_violations=0).split(b"\n", 1)[1]

    def run():
        return sum(len(chunk) for chunk in
                   xml_records(sirius_gen, data, "entry_t"))

    assert benchmark(run) > 0
