#!/usr/bin/env python
"""Parse-service load test: requests/s and latency percentiles.

Starts an in-process :class:`repro.serve.ServerThread`, registers the
gallery descriptions once, then drives a mixed-tenant workload over
real keep-alive HTTP connections from several client threads:

* ``count`` — record-counting floor on a ~16-record CLF payload;
* ``records`` — full field parse, formatted records echoed back;
* ``accum`` — statistical profile of the same payload;
* ``mixed`` — all three interleaved across rotating tenants.

For each scenario the envelope records requests/s plus p50/p99 latency
(milliseconds).  The run also *asserts* compile-once semantics: however
many clients and requests, the cache metrics must show exactly one
compile per distinct description.

Results go to ``BENCH_serve.json``.  Scale with
``PADS_BENCH_SERVE_REQUESTS`` (per scenario, default 400) and
``PADS_BENCH_SERVE_CLIENTS`` (default 4; CI smoke uses small values).

Run: ``python benchmarks/bench_serve.py [output.json]``
"""

import http.client
import json
import os
import statistics
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from conftest import machine_line  # noqa: E402
from repro import gallery  # noqa: E402
from repro.serve import ServerThread  # noqa: E402

REQUESTS = int(os.environ.get("PADS_BENCH_SERVE_REQUESTS", "400"))
CLIENTS = int(os.environ.get("PADS_BENCH_SERVE_CLIENTS", "4"))
TENANTS = ("alpha", "beta", "gamma")
PAYLOAD = gallery.CLF_SAMPLE * 8  # ~16 records per request


def percentile(samples, q):
    if not samples:
        return 0.0
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[idx]


class Client(threading.Thread):
    """One keep-alive connection issuing requests until the shared
    budget runs out."""

    def __init__(self, port, budget, lock, make_request):
        super().__init__(daemon=True)
        self.port = port
        self.budget = budget
        self.lock = lock
        self.make_request = make_request
        self.latencies = []
        self.failures = 0

    def run(self):
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=60)
        try:
            n = 0
            while True:
                with self.lock:
                    if self.budget[0] <= 0:
                        return
                    self.budget[0] -= 1
                path, doc, headers = self.make_request(n)
                n += 1
                body = json.dumps(doc)
                t0 = time.perf_counter()
                conn.request("POST", path, body=body,
                             headers={"Content-Type": "application/json",
                                      **headers})
                resp = conn.getresponse()
                resp.read()
                dt = time.perf_counter() - t0
                if resp.status == 200:
                    self.latencies.append(dt)
                else:
                    self.failures += 1
        finally:
            conn.close()


def drive(port, make_request, requests=REQUESTS, clients=CLIENTS):
    budget = [requests]
    lock = threading.Lock()
    workers = [Client(port, budget, lock, make_request)
               for _ in range(clients)]
    t0 = time.perf_counter()
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    elapsed = time.perf_counter() - t0
    latencies = [lat for w in workers for lat in w.latencies]
    failures = sum(w.failures for w in workers)
    return {
        "requests": len(latencies),
        "failures": failures,
        "seconds": round(elapsed, 3),
        "requests_per_sec": round(len(latencies) / elapsed, 1),
        "p50_ms": round(percentile(latencies, 0.50) * 1e3, 3),
        "p99_ms": round(percentile(latencies, 0.99) * 1e3, 3),
    }


def main() -> int:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_serve.json"
    results = {"machine": machine_line(), "clients": CLIENTS,
               "requests_per_scenario": REQUESTS,
               "payload_bytes": len(PAYLOAD), "scenarios": {}}
    with ServerThread() as st:
        port = st.port
        # register once; all scenario requests go by id (compile-once)
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        conn.request("POST", "/v1/descriptions",
                     body=json.dumps({"source": gallery.CLF}),
                     headers={"Content-Type": "application/json"})
        clf_id = json.loads(conn.getresponse().read())["id"]
        conn.close()

        def count_req(_n):
            return "/v1/parse", {"id": clf_id, "data": PAYLOAD,
                                 "mode": "count"}, {}

        def records_req(_n):
            return "/v1/parse", {"id": clf_id, "data": PAYLOAD,
                                 "mode": "records", "type": "entry_t"}, {}

        def accum_req(_n):
            return "/v1/parse", {"id": clf_id, "data": PAYLOAD,
                                 "mode": "accum", "type": "entry_t"}, {}

        def mixed_req(n):
            path, doc, _ = (count_req, records_req, accum_req)[n % 3](n)
            return path, doc, {"X-Tenant": TENANTS[n % len(TENANTS)]}

        for name, fn in (("count", count_req), ("records", records_req),
                         ("accum", accum_req), ("mixed", mixed_req)):
            stats = drive(port, fn)
            results["scenarios"][name] = stats
            print(f"{name:8s} {stats['requests_per_sec']:8.1f} req/s  "
                  f"p50 {stats['p50_ms']:7.3f} ms  "
                  f"p99 {stats['p99_ms']:7.3f} ms  "
                  f"({stats['requests']} ok, {stats['failures']} failed)")
            if stats["failures"]:
                print(f"FAIL: {name} had {stats['failures']} failed "
                      "requests", file=sys.stderr)
                return 1

        compiles = st.metrics.value("serve.compile")
        results["cache"] = {
            "compiles": compiles,
            "hits": st.metrics.value("serve.cache.hits"),
            "misses": st.metrics.value("serve.cache.misses"),
        }
        results["records_total"] = st.metrics.value("records.total")
        # compile-once: one registration, thousands of requests, one
        # compile.  A second compile means the cache key or the
        # single-flight gate regressed.
        if compiles != 1:
            print(f"FAIL: expected exactly 1 compile, saw {compiles}",
                  file=sys.stderr)
            return 1
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
