"""Scaling: throughput and memory across file sizes.

Section 1 of the paper: "Such volumes mean it must be possible to process
the data without loading it all into memory at once."  The record-at-a-
time entry point must deliver (a) throughput independent of file size and
(b) bounded buffering regardless of input length.  This bench measures
records/second at several scales and asserts the Source's internal buffer
stays bounded while streaming from a file on disk.
"""

import random

import pytest

from repro import gallery
from repro.tools.datagen import sirius_workload

SIZES = [1_000, 5_000, 20_000]


@pytest.fixture(scope="module")
def workloads():
    out = {}
    for n in SIZES:
        out[n] = sirius_workload(n, random.Random(n)).split(b"\n", 1)[1]
    return out


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.benchmark(group="scaling-records")
def test_throughput_at_scale(benchmark, sirius_gen, workloads, n):
    data = workloads[n]

    def run():
        return sum(1 for _ in sirius_gen.records(data, "entry_t"))

    assert benchmark(run) == n


def test_streaming_memory_is_bounded(sirius_gen, tmp_path):
    """Parsing a file from disk keeps the buffer bounded: the high-water
    mark of the internal buffer must not scale with file size."""
    data = sirius_workload(30_000, random.Random(1))
    path = tmp_path / "big.dat"
    path.write_bytes(data.split(b"\n", 1)[1])

    src = sirius_gen.open_file(str(path))
    high_water = 0
    count = 0
    for _, _pd in sirius_gen.records(src, "entry_t"):
        count += 1
        if count % 500 == 0:
            high_water = max(high_water, len(src._buf))
    src.close()
    assert count == 30_000
    # The file is several MB; the buffer must stay near the chunk size.
    assert high_water < 1_000_000, high_water


def test_throughput_is_scale_invariant(sirius_gen, workloads):
    """Records/second at 20k within 2.5x of records/second at 1k (no
    super-linear blowup)."""
    import time

    def rate(data, n):
        t0 = time.perf_counter()
        assert sum(1 for _ in sirius_gen.records(data, "entry_t")) == n
        return n / (time.perf_counter() - t0)

    small = rate(workloads[1_000], 1_000)
    # Warm-up done; measure both again.
    small = rate(workloads[1_000], 1_000)
    large = rate(workloads[20_000], 20_000)
    assert large > small / 2.5, (small, large)
