"""Hand-written baselines for the Figure 10 performance comparison.

The paper benchmarks PADS against hand-written PERL, "as PERL is the
language that our user base has typically used".  Both sides of our
comparison move to Python: these baselines transliterate the paper's two
PERL programs —

* the **vetter** ("323 lines of well-commented PERL") which splits each
  record on '|' and checks every property from the Sirius description,
  including the timestamp sort order, then routes records to a clean or an
  error stream, and
* the **selector** ("66 lines") which compiles the Figure 9 regular
  expression once and applies it per line to pull the order numbers of
  orders passing through a given state.

They are written the way a careful scripter would write them — one pass,
``bytes.split``, a compiled regex — so the PADS side is competing against
idiomatic hand-tuned code, as in the paper.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

# -- the hand-written Sirius vetter ------------------------------------------

_ZIP_RE = re.compile(rb"^\d{5}(-\d{4})?$")
# 13 pipe-separated header fields, then at least one state|timestamp event
# pair, all separated by '|': a minimal record splits into 15 parts.
_HEADER_FIELDS = 13


def _check_uint(field: bytes, bits: int) -> bool:
    if not field.isdigit():
        return False
    return int(field) < (1 << bits)


def _check_opt_pn(field: bytes) -> bool:
    if field == b"":
        return True
    if not field.isdigit():
        return False
    return len(field) in (1, 10)


def _check_ramp(field: bytes) -> bool:
    if field.startswith(b"no_ii"):
        return field[5:].isdigit()
    if field.startswith(b"-"):
        return field[1:].isdigit()
    return field.isdigit()


def vet_sirius_line(line: bytes, check_sort: bool = True) -> bool:
    """Validate one Sirius order record the way the PERL vetter does."""
    parts = line.split(b"|")
    if len(parts) < _HEADER_FIELDS + 2:
        return False  # header plus at least one event pair
    if not _check_uint(parts[0], 32):    # order_num
        return False
    if not _check_uint(parts[1], 32):    # att_order_num
        return False
    if not _check_uint(parts[2], 32):    # ord_version
        return False
    for i in (3, 4, 5, 6):               # the four optional phone numbers
        if not _check_opt_pn(parts[i]):
            return False
    if parts[7] and not _ZIP_RE.match(parts[7]):  # zip_code
        return False
    if not _check_ramp(parts[8]):        # ramp / no_ii
        return False
    # parts[9] order_type, parts[11] unused, parts[12] stream: free strings.
    if not _check_uint(parts[10], 32):   # order_details
        return False
    events = parts[13:]
    if len(events) < 2 or len(events) % 2 != 0:
        return False
    prev = -1
    for k in range(0, len(events), 2):
        ts = events[k + 1]
        if not ts.isdigit():
            return False
        t = int(ts)
        if t >= (1 << 32):
            return False
        if check_sort:
            if t < prev:
                return False
            prev = t
    return True


def python_vet_sirius(data: bytes, check_sort: bool = True) -> Tuple[List[bytes], List[bytes]]:
    """The vetter main loop: route each record to clean or error output."""
    clean: List[bytes] = []
    errors: List[bytes] = []
    for line in data.split(b"\n"):
        if not line:
            continue
        if vet_sirius_line(line, check_sort):
            clean.append(line)
        else:
            errors.append(line)
    return clean, errors


# -- the hand-written Sirius selector (Figure 9) ----------------------------------

def make_selector(state: bytes) -> re.Pattern:
    """The paper's Figure 9 regex, transliterated byte for byte:

    ``qr/^(\\d+)\\|(?:[^|]*\\|){12}(?:[^|]*\\|[^|]*\\|)*$STATE\\|/``
    """
    return re.compile(
        rb"^(\d+)\|(?:[^|]*\|){12}(?:[^|]*\|[^|]*\|)*" + re.escape(state) + rb"\|")


def python_select_sirius(data: bytes, state: bytes) -> List[int]:
    """Order numbers of all records ever passing through ``state``."""
    pattern = make_selector(state)
    out: List[int] = []
    for line in data.split(b"\n"):
        m = pattern.match(line)
        if m:
            out.append(int(m.group(1)))
    return out


# -- record counting (the paper's floor baseline) ------------------------------------

def python_count_records(data: bytes) -> int:
    """The PERL "simply counts the number of records" baseline."""
    count = 0
    for line in data.split(b"\n"):
        if line:
            count += 1
    return count


# -- PADS-side programs -----------------------------------------------------------------

def pads_vet_sirius(description, data: bytes, check_sort: bool = True):
    """The Figure 7 vetting program over a PADS description.

    Checks every property in the description (optionally masking off the
    timestamp sort), writing clean records to one list and error records
    to another.
    """
    from repro.core.masks import Mask, P_CheckAndSet, P_Set

    mask = Mask(P_CheckAndSet)
    if not check_sort:
        events_mask = Mask(P_CheckAndSet)
        events_mask.compound_level = P_Set
        mask.fields["events"] = events_mask
    clean = []
    errors = []
    for rep, pd in description.records(data, "entry_t", mask):
        if pd.nerr > 0:
            errors.append(rep)
        else:
            clean.append(rep)
    return clean, errors


def pads_select_sirius(description, data: bytes, state: str) -> List[int]:
    """The selection program: "we turn off all error checking and simply
    output the desired order numbers" (paper Section 7)."""
    from repro.core.masks import Mask, MaskFlag, P_Set

    mask = Mask(P_Set)  # materialise only; no checking
    out: List[int] = []
    for rep, pd in description.records(data, "entry_t", mask):
        for event in rep.events:
            if event.state == state:
                out.append(rep.header.order_num)
                break
    return out


def pads_count_records(description, data: bytes) -> int:
    """Count records through the PADS record discipline (like the paper's
    PADS counting program, no per-field work)."""
    return description.count_records(data)
