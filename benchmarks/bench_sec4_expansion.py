"""Section 4: declarative leverage — description-to-generated-code ratio.

"The ratio of the size of the data description to the size of the
generated code gives a rough measure of the leverage of the declarative
description.  For the 68 line Sirius data description, the compiler
yields a 1432 .h file and a 6471 .c file."

This bench measures the same ratio for every shipped description and
benchmarks compilation time itself.
"""

import pytest

from repro import gallery
from repro.codegen import generate_source


def _desc_lines(text: str) -> int:
    return len([l for l in text.splitlines()
                if l.strip() and not l.strip().startswith("/-")])


CASES = {
    "clf": (gallery.CLF, "ascii"),
    "sirius": (gallery.SIRIUS, "ascii"),
    "calldetail": (gallery.CALL_DETAIL, "binary"),
    "netflow": (gallery.NETFLOW, "binary"),
}


@pytest.mark.parametrize("name", list(CASES))
@pytest.mark.benchmark(group="sec4-compile")
def test_compile_description(benchmark, name):
    text, ambient = CASES[name]
    source = benchmark(generate_source, text, ambient=ambient)
    ratio = len(source.splitlines()) / _desc_lines(text)
    assert ratio > 5, "expected substantial expansion (paper: ~116x for C)"


def test_print_expansion_table(capsys):
    rows = []
    for name, (text, ambient) in CASES.items():
        gen = generate_source(text, ambient=ambient)
        desc_n = _desc_lines(text)
        gen_n = len(gen.splitlines())
        rows.append((name, desc_n, gen_n, gen_n / desc_n))
    with capsys.disabled():
        print()
        print(f"{'description':12} {'desc LoC':>9} {'generated LoC':>14} {'ratio':>7}")
        print("-" * 46)
        for name, d, g, r in rows:
            print(f"{name:12} {d:>9} {g:>14} {r:>6.1f}x")
        print("(paper: Sirius 68 desc lines -> 1432 .h + 6471 .c lines, ~116x)")
