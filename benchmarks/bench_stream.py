#!/usr/bin/env python
"""Streaming engine: throughput and peak memory on a large synthetic log.

The point of ``repro.stream`` is that input size and resident memory are
decoupled: a log many times larger than the sliding window parses in
O(window) bytes.  This bench writes a >= 100 MB synthetic CLF log to
disk **in chunks** (so the generator never inflates this process's RSS
high-water mark), then drives it through ``records_stream`` with a 1 MiB
window and measures:

* MB/s for the full record parse and for the record-counting floor;
* peak RSS (``ru_maxrss``) and its growth across the parse;
* the ``stream.high_water`` metric — asserted ``<= 2x window``, the
  bounded-memory contract the tests also pin.

Results go to ``BENCH_stream.json`` (CI uploads it next to the other
bench artifacts).  Scale with ``PADS_BENCH_STREAM_MB`` (default 100;
CI smoke uses a small value).

Run: ``python benchmarks/bench_stream.py [output.json]``
"""

import json
import os
import random
import resource
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import gallery, observe  # noqa: E402
from repro.codegen import compile_generated  # noqa: E402
from repro.tools.datagen import clf_workload  # noqa: E402

WINDOW = 1 << 20
GEN_BATCH = 5_000  # records per generation chunk (~0.8 MB)


def _maxrss_kb() -> int:
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return rss if sys.platform.startswith("linux") else rss // 1024


def synthesize(path: str, target_bytes: int) -> int:
    rng = random.Random(20050612)
    size = 0
    with open(path, "wb") as out:
        while size < target_bytes:
            chunk = clf_workload(GEN_BATCH, rng)
            out.write(chunk)
            size += len(chunk)
    return size


def main() -> int:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_stream.json"
    target_mb = float(os.environ.get("PADS_BENCH_STREAM_MB", "100"))
    gen = compile_generated(gallery.CLF)

    with tempfile.NamedTemporaryFile(suffix=".log", delete=False) as tmp:
        log = tmp.name
    try:
        size = synthesize(log, int(target_mb * (1 << 20)))
        size_mb = size / (1 << 20)

        rss_before = _maxrss_kb()
        t0 = time.perf_counter()
        with observe.observed() as obs:
            records = sum(1 for _ in gen.records_stream(log, "entry_t",
                                                        window=WINDOW))
        parse_s = time.perf_counter() - t0
        rss_after = _maxrss_kb()
        stream = obs.stats(deterministic=True)["stream"]

        t0 = time.perf_counter()
        counted = gen.count_records_stream(log, window=WINDOW)
        count_s = time.perf_counter() - t0

        from conftest import machine_line
        doc = {
            "machine": machine_line(),
            "size_mb": round(size_mb, 2),
            "window_bytes": WINDOW,
            "records": records,
            "parse": {"seconds": round(parse_s, 3),
                      "mb_per_sec": round(size_mb / parse_s, 2),
                      "records_per_sec": round(records / parse_s, 1)},
            "count": {"seconds": round(count_s, 3),
                      "mb_per_sec": round(size_mb / count_s, 2)},
            "peak_rss_kb": rss_after,
            "rss_growth_kb": rss_after - rss_before,
            "stream": stream,
        }
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)

        print(f"streamed {size_mb:.0f} MB / {records} records through a "
              f"{WINDOW >> 20} MiB window")
        print(f"  parse: {doc['parse']['mb_per_sec']} MB/s   "
              f"count: {doc['count']['mb_per_sec']} MB/s")
        print(f"  peak RSS {rss_after // 1024} MB "
              f"(+{doc['rss_growth_kb'] // 1024} MB across the parse), "
              f"buffered high-water {stream['high_water']} bytes")
        print(f"wrote {out_path}")

        # The contracts, not just the numbers:
        assert counted == records, (counted, records)
        assert stream["high_water"] <= 2 * WINDOW, \
            f"buffered {stream['high_water']} bytes > 2x the {WINDOW} window"
        # RSS must track the window, not the file.  256 MB of slack
        # swallows interpreter noise while still catching a slurp of a
        # 100 MB+ input (which would also double under latin-1 decode).
        assert rss_after - rss_before < 256 * 1024, \
            f"RSS grew {(rss_after - rss_before) // 1024} MB during a " \
            f"parse that should buffer ~{2 * WINDOW >> 20} MiB"
        return 0
    finally:
        os.unlink(log)


if __name__ == "__main__":
    sys.exit(main())
