#!/usr/bin/env python
"""Gate on BENCH_plan.json: plan-driven engines must not regress.

Reads the pytest-benchmark JSON produced by ``bench_plan.py`` and
compares each plan-driven benchmark's median against its reference-mode
twin (``fastpath=False``, the pre-refactor parse path).  The plan-driven
side carries the record fast functions and fused literal runs, so it
should be *faster*; the gate fails if any engine is more than 5% slower
than its reference.  The same tolerance gates the AST codegen backend
against the source backend on both fastpath-eligible workloads — the
specializer must pay for itself.

Optionally cross-checks against BENCH_parallel.json: its serial vetting
benchmark (``test_vet_serial``) measures the identical workload through
the plan-driven generated engine, so the two medians must agree within
a generous tolerance (guarding against the smoke comparing different
workloads after a refactor).

Also gates BENCH_batch.json when given: the batch engine's acceptance
bar is a **5x** records/sec speedup over the cursor engine on the
fixed-width call-detail entry, enforced with the same 5% tolerance the
plan pairs get (so the required within-run ratio is ``5.0 / 1.05``).
A later PR that slows the grid driver by more than 5% of that bar
fails here, not in review.

Also gates BENCH_durable.json when given: the boundary index must keep
an indexed seek at least **5x** faster than scanning from byte zero to
the same record, and the measured checkpoint write cost must stay under
**5%** of the parse it rode on (the durable engine's acceptance bar,
ISSUE PR 9).

Usage::

    python benchmarks/check_plan_regression.py BENCH_plan.json \
        [BENCH_parallel.json] [BENCH_batch.json] [BENCH_durable.json]

Exits 0 when every gate holds, 1 otherwise.  Stdlib only.
"""

import json
import sys

#: (plan-driven benchmark, reference benchmark) pairs; the first must not
#: be slower than ``TOLERANCE`` times the second.
PAIRS = [
    ("test_interp_vet_plan", "test_interp_vet_reference"),
    ("test_gen_vet_plan", "test_gen_vet_reference"),
    ("test_interp_calls_plan", "test_interp_calls_reference"),
    # The AST-specializing codegen backend must never be slower than the
    # source backend on fastpath-eligible descriptions (ISSUE PR 8).
    ("test_gen_vet_ast", "test_gen_vet_plan"),
    ("test_gen_calls_ast", "test_gen_calls_plan"),
]

TOLERANCE = 1.05          # >5% regression fails
CROSS_TOLERANCE = 2.0     # sanity band for the BENCH_parallel cross-check
BATCH_SPEEDUP = 5.0       # the batch engine's acceptance bar (ISSUE PR 6)
SEEK_SPEEDUP = 5.0        # indexed seek vs full scan floor (ISSUE PR 9)
CKPT_OVERHEAD_PCT = 5.0   # checkpoint write budget, % of the parse


def medians(path):
    with open(path) as handle:
        payload = json.load(handle)
    out = {}
    for bench in payload.get("benchmarks", []):
        out[bench["name"]] = bench["stats"]["median"]
    return out


def main(argv):
    if not argv:
        print(__doc__)
        return 1
    plan = medians(argv[0])
    failures = []

    for fast_name, ref_name in PAIRS:
        if fast_name not in plan or ref_name not in plan:
            failures.append(f"missing benchmark pair {fast_name}/{ref_name} "
                            f"in {argv[0]}")
            continue
        fast, ref = plan[fast_name], plan[ref_name]
        ratio = fast / ref if ref else float("inf")
        verdict = "OK" if ratio <= TOLERANCE else "REGRESSION"
        print(f"{fast_name}: {fast:.4f}s vs {ref_name}: {ref:.4f}s "
              f"-> {ratio:.3f}x ({verdict})")
        if ratio > TOLERANCE:
            failures.append(
                f"{fast_name} is {ratio:.3f}x its reference "
                f"(limit {TOLERANCE}x)")

    if len(argv) > 1:
        par = medians(argv[1])
        if "test_gen_vet_plan" in plan and "test_vet_serial" in par:
            a, b = plan["test_gen_vet_plan"], par["test_vet_serial"]
            ratio = max(a, b) / min(a, b) if min(a, b) else float("inf")
            verdict = "OK" if ratio <= CROSS_TOLERANCE else "MISMATCH"
            print(f"cross-check vs BENCH_parallel test_vet_serial: "
                  f"{a:.4f}s vs {b:.4f}s -> {ratio:.3f}x ({verdict})")
            if ratio > CROSS_TOLERANCE:
                failures.append(
                    f"plan/gen vetting median diverges {ratio:.3f}x from "
                    f"BENCH_parallel's serial vetting (limit "
                    f"{CROSS_TOLERANCE}x) — are the workloads still the "
                    "same?")

    if len(argv) > 2:
        with open(argv[2]) as handle:
            batch = json.load(handle)
        floor = BATCH_SPEEDUP / TOLERANCE
        speedups = {name: e["speedup"]
                    for name, e in batch.get("engines", {}).items()}
        if not speedups:
            failures.append(f"no engine results in {argv[2]}")
        for name, speedup in sorted(speedups.items()):
            verdict = "OK" if speedup >= floor else "SLOW"
            print(f"batch speedup ({name}): {speedup:.2f}x over the cursor "
                  f"engine (bar {BATCH_SPEEDUP}x, floor {floor:.2f}x) "
                  f"({verdict})")
        # The acceptance bar is "at least one fixed-width gallery entry
        # at 5x"; both engines clearing it is the expectation, one
        # engine clearing it is the requirement.
        if speedups and max(speedups.values()) < floor:
            failures.append(
                f"batch engine speedup {max(speedups.values()):.2f}x is "
                f"below the {BATCH_SPEEDUP}x bar (floor {floor:.2f}x with "
                f"the {TOLERANCE}x tolerance)")

    if len(argv) > 3:
        with open(argv[3]) as handle:
            dur = json.load(handle)
        seek = dur.get("seek", {}).get("speedup")
        overhead = dur.get("checkpoint", {}).get("overhead_pct")
        if seek is None or overhead is None:
            failures.append(f"no seek/checkpoint results in {argv[3]}")
        else:
            verdict = "OK" if seek >= SEEK_SPEEDUP else "SLOW"
            print(f"indexed seek: {seek:.1f}x over a scan to the same "
                  f"record (floor {SEEK_SPEEDUP}x) ({verdict})")
            if seek < SEEK_SPEEDUP:
                failures.append(
                    f"indexed seek speedup {seek:.1f}x is below the "
                    f"{SEEK_SPEEDUP}x floor")
            verdict = "OK" if overhead <= CKPT_OVERHEAD_PCT else "COSTLY"
            print(f"checkpoint writes: {overhead:.2f}% of the parse "
                  f"(budget {CKPT_OVERHEAD_PCT}%) ({verdict})")
            if overhead > CKPT_OVERHEAD_PCT:
                failures.append(
                    f"checkpoint overhead {overhead:.2f}% exceeds the "
                    f"{CKPT_OVERHEAD_PCT}% budget")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
