"""Section 5.4: XQuery over raw ad hoc data via the generated data API.

Runs the paper's three Sirius queries — the time-window selection the
paper prints, plus the two the analyst "coded in a mixture of AWK and
PERL": counting orders through a state and the average time between two
states — and benchmarks query evaluation over the node tree.
"""

import random

import pytest

from repro import gallery
from repro.tools.dataapi import node_new
from repro.tools.datagen import sirius_workload
from repro.tools.query import XQuery, query

N = 2000

TIME_WINDOW = ('$sirius/es/entry[events/event[1]'
               '[tstamp >= xs:date("2001-09-01") and'
               ' tstamp <= xs:date("2002-05-25")]]')
THROUGH_STATE = 'count($sirius/es/entry[events/event/state = "LOC_CRTE"])'
AVG_BETWEEN = ('avg(for $o in $sirius/es/entry'
               '    let $a := $o/events/event[state = "ST100"]/tstamp,'
               '        $b := $o/events/event[state = "ST200"]/tstamp'
               '    where exists($a) and exists($b)'
               '    return $b - $a)')


@pytest.fixture(scope="module")
def sirius_tree(sirius_interp):
    data = sirius_workload(N, random.Random(13),
                           syntax_errors=0, sort_violations=0)
    rep, pd = sirius_interp.parse(data)
    return node_new(sirius_interp, rep, pd, None, name="sirius")


def test_paper_time_window_query(sirius_tree, capsys):
    res = query(TIME_WINDOW, sirius_tree)
    assert 0 < len(res) <= N
    with capsys.disabled():
        print(f"\norders starting in window: {len(res)} of {N}")


def test_count_through_state(sirius_tree):
    res = query(THROUGH_STATE, sirius_tree)
    assert res and isinstance(res[0], int)


def test_average_between_states(sirius_tree):
    res = query(AVG_BETWEEN, sirius_tree)
    # The window may legitimately be empty for some seeds; type-check only.
    assert res == [] or isinstance(res[0], (int, float))


@pytest.mark.benchmark(group="sec54-query")
def test_query_throughput(benchmark, sirius_tree):
    compiled = XQuery(TIME_WINDOW)
    res = benchmark(compiled.run, sirius_tree)
    assert len(res) > 0
