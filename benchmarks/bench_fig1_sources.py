"""Figure 1: the table of ad hoc data sources.

The paper's Figure 1 catalogues the diversity PADS must handle: ASCII
fixed-column (CLF), ASCII variable-width (Sirius), fixed-width binary
(call detail), Cobol (Altair billing), and data-dependent binary
(netflow).  This bench parses a synthetic instance of each source class
through its description — same parser, five very different physical
layouts — and prints a Figure 1-style summary table.
"""

import random

import pytest

from repro import gallery
from repro.tools.cobol import translate
from repro.tools.datagen import call_detail_workload, clf_workload, sirius_workload

N = 2000


@pytest.fixture(scope="module")
def sources(rng_seed=20050612):
    rng = random.Random(rng_seed)
    clf = gallery.load_clf()
    sirius = gallery.load_sirius()
    call = gallery.load_call_detail()
    netflow = gallery.load_netflow()
    import importlib.resources as res
    billing = translate(
        (res.files("repro.gallery") / "billing.cpy").read_text(),
        "billing.cpy")
    billing_desc = billing.compile()

    return {
        "CLF web logs": (
            clf, "entry_t", clf_workload(N, rng),
            "fixed-column ASCII records", "race conditions on log entry"),
        "Provisioning (Sirius)": (
            sirius, "entry_t", sirius_workload(N, rng).split(b"\n", 1)[1],
            "variable-width ASCII records", "unexpected values"),
        "Call detail": (
            call, "call_t", call_detail_workload(N, rng),
            "fixed-width binary records", "undocumented data"),
        "Billing (Altair)": (
            billing_desc, billing.record_type,
            b"".join(billing_desc.write(
                billing_desc.generate(billing.record_type, rng),
                billing.record_type) for _ in range(N)),
            "Cobol (EBCDIC/packed decimal)", "corrupted data feeds"),
        "Netflow": (
            netflow, None,
            b"".join(netflow.write(netflow.generate("nf_packet_t", rng),
                                   "nf_packet_t") for _ in range(N // 100)),
            "data-dependent binary records", "missed packets"),
    }


@pytest.mark.parametrize("source_name", [
    "CLF web logs", "Provisioning (Sirius)", "Call detail",
    "Billing (Altair)", "Netflow"])
@pytest.mark.benchmark(group="fig1-sources")
def test_parse_source_class(benchmark, sources, source_name):
    desc, record_type, data, representation, _err = sources[source_name]

    def run():
        if record_type is None:
            rep, pd = desc.parse(data)
            return len(rep), pd.nerr
        total = bad = 0
        for _, pd in desc.records(data, record_type):
            total += 1
            bad += 1 if pd.nerr else 0
        return total, bad

    total, bad = benchmark(run)
    assert total > 0


def test_print_figure1_table(sources, capsys):
    """Regenerate the Figure 1 table shape (not a timing benchmark)."""
    rows = []
    for name, (desc, record_type, data, representation, errors) in sources.items():
        if record_type is None:
            rep, pd = desc.parse(data)
            total, bad = len(rep), (1 if pd.nerr else 0)
        else:
            results = [(r, pd) for r, pd in desc.records(data, record_type)]
            total = len(results)
            bad = sum(1 for _, pd in results if pd.nerr)
        rows.append((name, representation, total, len(data), bad, errors))

    with capsys.disabled():
        print()
        print(f"{'Name & Use':24} {'Representation':32} "
              f"{'Records':>8} {'Bytes':>9} {'Bad':>4}  Common errors")
        print("-" * 110)
        for name, representation, total, size, bad, errors in rows:
            print(f"{name:24} {representation:32} {total:>8} {size:>9} "
                  f"{bad:>4}  {errors}")
