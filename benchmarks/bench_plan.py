"""Plan IR fast paths: plan-driven engines vs reference mode.

The plan layer attaches two optimizations both engines consume: compiled
record fast functions (anchored regex / fixed-width slicing) and fused
literal runs.  ``fastpath=False`` disables both, leaving the pre-refactor
general parse path — the reference each pair below is measured against.

The workload is the same synthetic Sirius vetting task as
``bench_parallel.py`` (shared fixtures), plus the fixed-width call-detail
stream that exercises the slicing path.  **Correctness is asserted inside
every benchmark**: plan-driven and reference runs must agree on error
totals before their timings mean anything.

The generated engine is additionally measured per codegen backend: the
AST-specializing backend (``backend='ast'``) against the source backend
on both the vetting and slicing workloads, gated AST-never-slower-than-
source with the same tolerance as the plan/reference pairs.

Run ``pytest benchmarks/bench_plan.py --benchmark-only
--benchmark-json=BENCH_plan.json``; feed the JSON to
``benchmarks/check_plan_regression.py``, which fails if a plan-driven
engine regresses more than 5% against its reference twin (or the AST
backend against the source backend).
"""

import random

import pytest

from repro import gallery, parallel
from repro.codegen import compile_generated
from repro.core.api import compile_description
from repro.core.io import FixedWidthRecords
from repro.tools.datagen import call_detail_workload

from .conftest import N_RECORDS


@pytest.fixture(scope="module")
def sirius_interp_ref():
    return compile_description(gallery.SIRIUS, fastpath=False)


@pytest.fixture(scope="module")
def sirius_gen_ref():
    return compile_generated(gallery.SIRIUS, fastpath=False)


def _vet(description, body):
    return parallel.tally_records(description, body, "entry_t")


@pytest.mark.benchmark(group="plan-interp-vetting")
def test_interp_vet_plan(benchmark, sirius_interp, sirius_interp_ref,
                         sirius_body):
    base = _vet(sirius_interp_ref, sirius_body)
    tally = benchmark(_vet, sirius_interp, sirius_body)
    assert tally.records == base.records == N_RECORDS
    assert tally.bad_records == base.bad_records
    assert tally.by_code == base.by_code


@pytest.mark.benchmark(group="plan-interp-vetting")
def test_interp_vet_reference(benchmark, sirius_interp_ref, sirius_body):
    tally = benchmark(_vet, sirius_interp_ref, sirius_body)
    assert tally.records == N_RECORDS


@pytest.mark.benchmark(group="plan-gen-vetting")
def test_gen_vet_plan(benchmark, sirius_gen, sirius_gen_ref, sirius_body):
    base = _vet(sirius_gen_ref, sirius_body)
    tally = benchmark(_vet, sirius_gen, sirius_body)
    assert tally.records == base.records == N_RECORDS
    assert tally.bad_records == base.bad_records
    assert tally.by_code == base.by_code


@pytest.mark.benchmark(group="plan-gen-vetting")
def test_gen_vet_reference(benchmark, sirius_gen_ref, sirius_body):
    tally = benchmark(_vet, sirius_gen_ref, sirius_body)
    assert tally.records == N_RECORDS


@pytest.mark.benchmark(group="plan-gen-vetting")
def test_gen_vet_ast(benchmark, sirius_gen, sirius_gen_ast, sirius_body):
    """The AST-specializing backend on the same vetting workload: gated
    by ``check_plan_regression.py`` to never be slower than the source
    backend (``test_gen_vet_plan``)."""
    assert sirius_gen_ast.backend == "ast"
    base = _vet(sirius_gen, sirius_body)
    tally = benchmark(_vet, sirius_gen_ast, sirius_body)
    assert tally.records == base.records == N_RECORDS
    assert tally.bad_records == base.bad_records
    assert tally.by_code == base.by_code


# -- fixed-width slicing (binary call-detail records) -----------------------


@pytest.fixture(scope="module")
def calls_body() -> bytes:
    return call_detail_workload(N_RECORDS, random.Random(20050612))


@pytest.fixture(scope="module")
def calls_interp():
    return compile_description(gallery.CALL_DETAIL, ambient="binary",
                               discipline=FixedWidthRecords(24))


@pytest.fixture(scope="module")
def calls_interp_ref():
    return compile_description(gallery.CALL_DETAIL, ambient="binary",
                               discipline=FixedWidthRecords(24),
                               fastpath=False)


def _count_clean(description, body):
    good = 0
    for _rep, pd in description.records(body, "call_t"):
        if pd.nerr == 0:
            good += 1
    return good


@pytest.mark.benchmark(group="plan-slicing")
def test_interp_calls_plan(benchmark, calls_interp, calls_interp_ref,
                           calls_body):
    base = _count_clean(calls_interp_ref, calls_body)
    good = benchmark(_count_clean, calls_interp, calls_body)
    assert good == base == N_RECORDS


@pytest.mark.benchmark(group="plan-slicing")
def test_interp_calls_reference(benchmark, calls_interp_ref, calls_body):
    assert benchmark(_count_clean, calls_interp_ref, calls_body) == N_RECORDS


@pytest.fixture(scope="module")
def calls_gen():
    return compile_generated(gallery.CALL_DETAIL, ambient="binary",
                             discipline=FixedWidthRecords(24),
                             backend="source")


@pytest.fixture(scope="module")
def calls_gen_ast():
    return compile_generated(gallery.CALL_DETAIL, ambient="binary",
                             discipline=FixedWidthRecords(24),
                             backend="ast")


@pytest.mark.benchmark(group="plan-slicing")
def test_gen_calls_plan(benchmark, calls_gen, calls_body):
    assert benchmark(_count_clean, calls_gen, calls_body) == N_RECORDS


@pytest.mark.benchmark(group="plan-slicing")
def test_gen_calls_ast(benchmark, calls_gen, calls_gen_ast, calls_body):
    """The slicing fast function with probes byte-compare-folded; gated
    against the source backend (``test_gen_calls_plan``)."""
    assert calls_gen_ast.backend == "ast"
    base = _count_clean(calls_gen, calls_body)
    good = benchmark(_count_clean, calls_gen_ast, calls_body)
    assert good == base == N_RECORDS
