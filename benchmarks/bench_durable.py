#!/usr/bin/env python
"""Durable runs: what the boundary index buys and what checkpoints cost.

Four numbers, measured on a >= 100 MB synthetic CLF log:

* **Index build overhead** — sampling sealed-record offsets during a
  full serial scan versus the same scan bare.  The sink is one ``is
  None`` test per record plus an append every N records, so this should
  be noise.
* **Indexed seek speedup** — positioning a cursor on record ~0.9*total
  via ``open_at_record`` (one ``seek`` + <= interval record walks)
  versus scanning from byte 0.  This is the headline: the gate in
  ``check_plan_regression.py`` holds it above ``SEEK_SPEEDUP``x.
* **Chunk-plan speedup** — ``plan_chunks_indexed`` (arithmetic over
  sampled offsets) versus ``plan_chunks`` (seek + boundary scan per
  probe point).
* **Checkpoint overhead** — seconds spent inside ``_write_checkpoint``
  (pickle + fsync + rename) during a checkpointed ``accumulate_durable``
  over a record-aligned ~8 MB slice, as a fraction of the parse they
  rode on.  The gate holds this under 5%.  A plain-vs-checkpointed A/B
  wall-clock delta and a crash+resume run are also reported, but not
  gated: on a shared box their noise floor is well above the
  millisecond-scale cost being measured.

Results go to ``BENCH_durable.json``.  Scale with
``PADS_BENCH_DURABLE_MB`` (default 100; CI smoke uses 8).

Run: ``python benchmarks/bench_durable.py [output.json]``
"""

import json
import os
import random
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import durable, gallery  # noqa: E402
from repro.codegen import compile_generated  # noqa: E402
from repro.core.io import MIN_CHUNK_BYTES, plan_chunks  # noqa: E402
from repro.tools.datagen import clf_workload  # noqa: E402

GEN_BATCH = 5_000          # records per generation chunk (~0.8 MB)
SLICE_BYTES = 8 << 20      # checkpoint-overhead workload (record-aligned)
REPEATS = 3                # best-of-N for the overhead comparisons


def synthesize(path: str, target_bytes: int) -> int:
    rng = random.Random(20050612)
    size = 0
    with open(path, "wb") as out:
        while size < target_bytes:
            chunk = clf_workload(GEN_BATCH, rng)
            out.write(chunk)
            size += len(chunk)
    return size


def record_slice(log: str, out_path: str, limit: int) -> int:
    """Copy the first <= ``limit`` bytes of ``log``, cut on a newline."""
    with open(log, "rb") as handle:
        blob = handle.read(limit)
    blob = blob[:blob.rfind(b"\n") + 1]
    with open(out_path, "wb") as out:
        out.write(blob)
    return len(blob)


def best_of(repeats, fn):
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        times.append(time.perf_counter() - t0)
    return min(times), out


def main() -> int:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_durable.json"
    target_mb = float(os.environ.get("PADS_BENCH_DURABLE_MB", "100"))
    gen = compile_generated(gallery.CLF)
    discipline = gen.discipline

    with tempfile.NamedTemporaryFile(suffix=".log", delete=False) as tmp:
        log = tmp.name
    slice_log = log + ".slice"
    try:
        size = synthesize(log, int(target_mb * (1 << 20)))
        size_mb = size / (1 << 20)

        # -- index build overhead: sampled scan vs bare scan ------------
        def bare_count():
            src = gen.open_file(log)
            with src:
                n = 0
                while src.begin_record():
                    src.end_record()
                    n += 1
            return n

        scan_s, records = best_of(REPEATS, bare_count)
        build_s, (idx, idx_path) = best_of(
            REPEATS, lambda: durable.build_index(
                gen, log, interval=durable.DEFAULT_INDEX_INTERVAL))
        assert idx.records == records, (idx.records, records)
        build_overhead_pct = (build_s - scan_s) / scan_s * 100.0

        # -- indexed seek vs scan-from-zero -----------------------------
        target = int(records * 0.9)

        def scan_to_target():
            src = gen.open_file(log)
            with src:
                for _ in range(target):
                    src.begin_record()
                    src.end_record()
                src.begin_record()
                got = src.record_bytes()
                src.end_record()
            return got

        def seek_to_target():
            src = durable.open_at_record(gen, log, target, idx)
            with src:
                src.begin_record()
                got = src.record_bytes()
                src.end_record()
            return got

        scan_seek_s, by_scan = best_of(REPEATS, scan_to_target)
        seek_s, by_seek = best_of(REPEATS, seek_to_target)
        assert by_scan == by_seek
        seek_speedup = scan_seek_s / seek_s

        # -- chunk planning: offset arithmetic vs boundary probing ------
        jobs = 8

        def plan_scan():
            with open(log, "rb") as handle:
                return plan_chunks(handle, size, discipline, jobs)

        plan_scan_s, chunks_scan = best_of(REPEATS, plan_scan)
        plan_idx_s, chunks_idx = best_of(
            REPEATS, lambda: durable.plan_chunks_indexed(idx, jobs))
        assert chunks_idx[0][0] == 0 and chunks_idx[-1][1] == size

        # -- checkpoint overhead + crash/resume on the ~8 MB slice ------
        slice_size = record_slice(log, slice_log, SLICE_BYTES)

        def accum(**kw):
            return durable.accumulate_durable(gen, slice_log, "entry_t",
                                              build_index=False, **kw)

        # The gated number is the *instrumented* cost: seconds spent
        # inside _write_checkpoint during the run, over the parse it
        # rode on.  An A/B wall-clock delta of two multi-second runs on
        # a shared box swings an order of magnitude more than the ~ms
        # the writes actually take, so it is reported but not gated
        # (the runs are interleaved to cancel slow clock drift).
        write_cost = [0.0]
        orig_write = durable._write_checkpoint

        def timed_write(path, payload):
            t0 = time.perf_counter()
            orig_write(path, payload)
            write_cost[0] += time.perf_counter() - t0

        plain_ts, ckpt_ts, write_ts = [], [], []
        durable._write_checkpoint = timed_write
        try:
            for _ in range(REPEATS):
                t0 = time.perf_counter()
                _, tally = accum(checkpoint=None)
                plain_ts.append(time.perf_counter() - t0)
                write_cost[0] = 0.0
                t0 = time.perf_counter()
                accum()
                ckpt_ts.append(time.perf_counter() - t0)
                write_ts.append(write_cost[0])
        finally:
            durable._write_checkpoint = orig_write
        plain_s, ckpt_s = min(plain_ts), min(ckpt_ts)
        write_s = write_ts[ckpt_ts.index(ckpt_s)]
        ckpt_overhead_pct = write_s / (ckpt_s - write_s) * 100.0
        ab_delta_pct = (ckpt_s - plain_s) / plain_s * 100.0
        slice_records = tally.records
        n_writes = slice_records // durable.DEFAULT_CHECKPOINT_INTERVAL

        def crash_then_resume():
            durable._CRASH_AFTER = slice_records // 2
            try:
                accum()
            except durable._InjectedCrash:
                pass
            finally:
                durable._CRASH_AFTER = None
            return accum(resume=True)

        t0 = time.perf_counter()
        crash_then_resume()
        interrupted_s = time.perf_counter() - t0
        resume_overhead_pct = (interrupted_s - ckpt_s) / ckpt_s * 100.0

        from conftest import machine_line
        doc = {
            "machine": machine_line(),
            "size_mb": round(size_mb, 2),
            "records": records,
            "index": {
                "interval": durable.DEFAULT_INDEX_INTERVAL,
                "file_bytes": os.path.getsize(idx_path),
                "scan_seconds": round(scan_s, 3),
                "build_seconds": round(build_s, 3),
                "build_overhead_pct": round(build_overhead_pct, 2),
            },
            "seek": {
                "target_record": target,
                "scan_seconds": round(scan_seek_s, 4),
                "seek_seconds": round(seek_s, 6),
                "speedup": round(seek_speedup, 1),
            },
            "plan": {
                "jobs": jobs,
                "chunks": len(chunks_idx),
                "scan_seconds": round(plan_scan_s, 6),
                "indexed_seconds": round(plan_idx_s, 6),
                "speedup": round(plan_scan_s / plan_idx_s, 1)
                if plan_idx_s else None,
            },
            "checkpoint": {
                "slice_mb": round(slice_size / (1 << 20), 2),
                "slice_records": slice_records,
                "interval": durable.DEFAULT_CHECKPOINT_INTERVAL,
                "writes": n_writes,
                "plain_seconds": round(plain_s, 3),
                "checkpointed_seconds": round(ckpt_s, 3),
                "write_seconds": round(write_s, 4),
                "overhead_pct": round(ckpt_overhead_pct, 2),
                "ab_delta_pct": round(ab_delta_pct, 2),
                "interrupted_resumed_seconds": round(interrupted_s, 3),
                "resume_overhead_pct": round(resume_overhead_pct, 2),
            },
        }
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)

        print(f"indexed {size_mb:.0f} MB / {records} records "
              f"(every {durable.DEFAULT_INDEX_INTERVAL}, "
              f"{doc['index']['file_bytes']} bytes on disk)")
        print(f"  build overhead: {build_overhead_pct:+.1f}% over the "
              f"bare {scan_s:.2f}s scan")
        print(f"  seek to record {target}: {seek_s * 1e3:.2f} ms vs "
              f"{scan_seek_s:.2f}s scan -> {seek_speedup:.0f}x")
        print(f"  plan {len(chunks_idx)} chunks: {plan_idx_s * 1e6:.0f} us "
              f"indexed vs {plan_scan_s * 1e6:.0f} us probing")
        print(f"checkpoints every {durable.DEFAULT_CHECKPOINT_INTERVAL} "
              f"records on {doc['checkpoint']['slice_mb']} MB: "
              f"{ckpt_overhead_pct:+.2f}% in {n_writes} writes "
              f"({write_s * 1e3:.1f} ms; A/B delta {ab_delta_pct:+.1f}%); "
              f"crash+resume {resume_overhead_pct:+.1f}% vs uninterrupted")
        print(f"wrote {out_path}")

        # The contracts, not just the numbers (the committed-snapshot
        # gate in check_plan_regression.py re-checks these offline):
        assert seek_speedup >= 5.0, \
            f"indexed seek only {seek_speedup:.1f}x over a full scan"
        assert ckpt_overhead_pct <= 5.0, \
            f"checkpointing cost {ckpt_overhead_pct:.1f}% (> 5% budget)"
        return 0
    finally:
        for leftover in (log, slice_log, log + durable.INDEX_SUFFIX,
                         slice_log + durable.CHECKPOINT_SUFFIX):
            try:
                os.unlink(leftover)
            except OSError:
                pass


if __name__ == "__main__":
    sys.exit(main())
