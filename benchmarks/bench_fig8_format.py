"""Figure 8: formatted CLF records.

Given the delimiter string "|" and the output date format "%D:%T", the
generated formatting program applied to Figure 2's data must produce
exactly Figure 8's two lines.  The benchmark measures formatting
throughput over a larger workload.
"""

import random

import pytest

from repro import gallery
from repro.tools.datagen import clf_workload
from repro.tools.fmt import format_records

N = 10000


def test_figure8_output_is_exact(clf_interp, capsys):
    lines = list(format_records(clf_interp, gallery.CLF_SAMPLE, "entry_t",
                                delims=["|"], date_format="%D:%T"))
    output = "\n".join(lines) + "\n"
    assert output == gallery.CLF_FORMATTED
    with capsys.disabled():
        print()
        print(output, end="")


@pytest.mark.benchmark(group="fig8-format")
def test_formatting_throughput(benchmark, clf_gen):
    data = clf_workload(N, random.Random(8), dash_rate=0.0)

    def run():
        count = 0
        for _ in format_records(clf_gen, data, "entry_t",
                                delims=["|"], date_format="%D:%T"):
            count += 1
        return count

    assert benchmark(run) == N
