"""Shared benchmark fixtures: compiled descriptions and synthetic
workloads calibrated to the paper's file statistics.

The paper's benchmark file is 2.2GB / 11.8M records; we default to a
20k-record file (~2MB) so the full harness runs in minutes.  Set
``PADS_BENCH_RECORDS`` to scale up.
"""

import os
import random

import pytest

from repro import gallery
from repro.codegen import compile_generated
from repro.tools.datagen import clf_workload, sirius_workload

N_RECORDS = int(os.environ.get("PADS_BENCH_RECORDS", "20000"))
SELECT_STATE = "LOC_CRTE"


def machine_line() -> str:
    """One line of provenance for committed ``BENCH_*.json`` snapshots.

    Both the pytest-benchmark envelope (via the update hook below) and
    the hand-rolled bench scripts (``bench_batch.py``,
    ``bench_stream.py``, ``bench_durable.py``) embed this same line, so
    every committed artifact answers "measured where?" identically."""
    import platform
    return (f"{platform.python_implementation()} "
            f"{platform.python_version()} on "
            f"{platform.system().lower()}-{platform.machine()} "
            f"({os.cpu_count() or 1} cpu)")


#: What ``check_plan_regression.py`` and a human diff actually read.
_STAT_KEYS = ("min", "max", "mean", "stddev", "median", "rounds",
              "iterations", "ops")


def pytest_benchmark_update_json(config, benchmarks, output_json):
    """Compact the committed envelope.

    Stock pytest-benchmark JSON carries a screenful of cpuinfo, the git
    commit block, per-round raw timings and interpreter build strings —
    none of which the regression gate reads, all of which churn on every
    machine.  Keep the stats summary plus one provenance line."""
    output_json["machine_info"] = {"summary": machine_line()}
    output_json.pop("commit_info", None)
    for bench in output_json.get("benchmarks", []):
        stats = bench.get("stats", {})
        bench["stats"] = {k: stats[k] for k in _STAT_KEYS if k in stats}
        bench.pop("options", None)
        bench.pop("extra_info", None)


@pytest.fixture(scope="session")
def sirius_interp():
    return gallery.load_sirius()


@pytest.fixture(scope="session")
def sirius_gen():
    """The generated engine on the source backend — the historical
    baseline every BENCH_*.json number was recorded against.  The AST
    backend is measured separately (``sirius_gen_ast``) so the
    three-way ablation stays apples-to-apples."""
    return compile_generated(gallery.SIRIUS, backend="source")


@pytest.fixture(scope="session")
def sirius_gen_ast():
    return compile_generated(gallery.SIRIUS, backend="ast")


@pytest.fixture(scope="session")
def clf_interp():
    return gallery.load_clf()


@pytest.fixture(scope="session")
def clf_gen():
    return compile_generated(gallery.CLF)


@pytest.fixture(scope="session")
def sirius_file() -> bytes:
    """A synthetic Sirius summary: the paper's error mix, N_RECORDS orders."""
    return sirius_workload(N_RECORDS, random.Random(20050612))


@pytest.fixture(scope="session")
def sirius_body(sirius_file) -> bytes:
    """The order records without the summary-header line."""
    return sirius_file.split(b"\n", 1)[1]


@pytest.fixture(scope="session")
def sirius_clean(sirius_interp, sirius_body) -> bytes:
    """Vetted data: what the paper pipes into the selection programs."""
    from .baselines import python_vet_sirius
    clean, _ = python_vet_sirius(sirius_body)
    return b"\n".join(clean) + b"\n"


@pytest.fixture(scope="session")
def clf_file() -> bytes:
    return clf_workload(N_RECORDS, random.Random(19971015))
