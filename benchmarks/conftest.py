"""Shared benchmark fixtures: compiled descriptions and synthetic
workloads calibrated to the paper's file statistics.

The paper's benchmark file is 2.2GB / 11.8M records; we default to a
20k-record file (~2MB) so the full harness runs in minutes.  Set
``PADS_BENCH_RECORDS`` to scale up.
"""

import os
import random

import pytest

from repro import gallery
from repro.codegen import compile_generated
from repro.tools.datagen import clf_workload, sirius_workload

N_RECORDS = int(os.environ.get("PADS_BENCH_RECORDS", "20000"))
SELECT_STATE = "LOC_CRTE"


@pytest.fixture(scope="session")
def sirius_interp():
    return gallery.load_sirius()


@pytest.fixture(scope="session")
def sirius_gen():
    """The generated engine on the source backend — the historical
    baseline every BENCH_*.json number was recorded against.  The AST
    backend is measured separately (``sirius_gen_ast``) so the
    three-way ablation stays apples-to-apples."""
    return compile_generated(gallery.SIRIUS, backend="source")


@pytest.fixture(scope="session")
def sirius_gen_ast():
    return compile_generated(gallery.SIRIUS, backend="ast")


@pytest.fixture(scope="session")
def clf_interp():
    return gallery.load_clf()


@pytest.fixture(scope="session")
def clf_gen():
    return compile_generated(gallery.CLF)


@pytest.fixture(scope="session")
def sirius_file() -> bytes:
    """A synthetic Sirius summary: the paper's error mix, N_RECORDS orders."""
    return sirius_workload(N_RECORDS, random.Random(20050612))


@pytest.fixture(scope="session")
def sirius_body(sirius_file) -> bytes:
    """The order records without the summary-header line."""
    return sirius_file.split(b"\n", 1)[1]


@pytest.fixture(scope="session")
def sirius_clean(sirius_interp, sirius_body) -> bytes:
    """Vetted data: what the paper pipes into the selection programs."""
    from .baselines import python_vet_sirius
    clean, _ = python_vet_sirius(sirius_body)
    return b"\n".join(clean) + b"\n"


@pytest.fixture(scope="session")
def clf_file() -> bytes:
    return clf_workload(N_RECORDS, random.Random(19971015))
