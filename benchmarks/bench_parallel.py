"""Parallel engine: chunked map-reduce vs the serial entry points.

The paper's Figure 10 tasks (vetting, selection, record counting) are
embarrassingly parallel — records are independent units of work — yet the
serial runtime drives them through one core.  This bench runs the same
tasks through :mod:`repro.parallel` with a 4-worker pool and compares
against the serial twins.  **Correctness is asserted inside every
benchmark**: the parallel side must produce byte-identical error totals
and accumulator reports, not just similar timings.

The speedup assertion is gated on the machine actually having cores to
scale onto: on a multi-core box 4 workers must beat serial by >= 2x on
the vetting task; on a 1-2 core box (CI containers) only equivalence is
checked.

Run ``pytest benchmarks/bench_parallel.py --benchmark-only``; scale with
``PADS_BENCH_RECORDS``.
"""

import os
import time

import pytest

from repro import parallel
from repro.tools.accum import accumulate_records

from .conftest import N_RECORDS

JOBS = 4
CORES = os.cpu_count() or 1


def _warm_pool(description, data):
    """First parallel call pays pool + fork startup; do it off the clock."""
    parallel.parallel_count(description, data, jobs=JOBS)


@pytest.mark.benchmark(group="parallel-vetting")
def test_vet_serial(benchmark, sirius_gen, sirius_body):
    tally = benchmark(parallel.tally_records, sirius_gen, sirius_body,
                      "entry_t")
    assert tally.records == N_RECORDS


@pytest.mark.benchmark(group="parallel-vetting")
def test_vet_parallel(benchmark, sirius_gen, sirius_body):
    _warm_pool(sirius_gen, sirius_body)
    serial = parallel.tally_records(sirius_gen, sirius_body, "entry_t")
    tally = benchmark(parallel.parallel_tally, sirius_gen, sirius_body,
                      "entry_t", jobs=JOBS)
    assert tally.records == serial.records
    assert tally.bad_records == serial.bad_records
    assert tally.total_errors == serial.total_errors
    assert tally.by_code == serial.by_code


@pytest.mark.benchmark(group="parallel-count")
def test_count_serial(benchmark, sirius_gen, sirius_body):
    assert benchmark(sirius_gen.count_records, sirius_body) == N_RECORDS


@pytest.mark.benchmark(group="parallel-count")
def test_count_parallel(benchmark, sirius_gen, sirius_body):
    _warm_pool(sirius_gen, sirius_body)
    n = benchmark(parallel.parallel_count, sirius_gen, sirius_body, jobs=JOBS)
    assert n == N_RECORDS


@pytest.mark.benchmark(group="parallel-accum")
def test_accum_serial(benchmark, sirius_gen, sirius_body):
    acc, _hdr, n = benchmark(accumulate_records, sirius_gen, sirius_body,
                             "entry_t")
    assert n == N_RECORDS


@pytest.mark.benchmark(group="parallel-accum")
def test_accum_parallel(benchmark, sirius_gen, sirius_body):
    _warm_pool(sirius_gen, sirius_body)
    serial_acc, _hdr, _n = accumulate_records(sirius_gen, sirius_body,
                                              "entry_t")
    acc, header, tally = benchmark(parallel.parallel_accumulate, sirius_gen,
                                   sirius_body, "entry_t", jobs=JOBS)
    assert header is None
    assert tally.records == N_RECORDS
    assert (acc.self_acc.good, acc.self_acc.bad) == \
        (serial_acc.self_acc.good, serial_acc.self_acc.bad)
    assert acc.full_report() == serial_acc.full_report()


def test_parallel_speedup():
    """With real cores underneath, 4 workers must give >= 2x on vetting.

    On machines without at least 4 cores there is nothing to scale onto,
    so only serial/parallel equivalence is asserted (the timing ratio is
    still printed for the record).
    """
    import random

    from repro.codegen import compile_generated
    from repro import gallery
    from repro.tools.datagen import sirius_workload

    desc = compile_generated(gallery.SIRIUS)
    n = max(N_RECORDS, 20_000)
    body = sirius_workload(n, random.Random(20050612)).split(b"\n", 1)[1]
    _warm_pool(desc, body)

    t0 = time.perf_counter()
    serial = parallel.tally_records(desc, body, "entry_t")
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    par = parallel.parallel_tally(desc, body, "entry_t", jobs=JOBS)
    t_parallel = time.perf_counter() - t0

    assert par.records == serial.records == n
    assert par.bad_records == serial.bad_records
    assert par.total_errors == serial.total_errors
    assert par.by_code == serial.by_code

    speedup = t_serial / t_parallel if t_parallel else float("inf")
    print(f"\nvetting {n} records: serial {t_serial:.2f}s, "
          f"parallel({JOBS}) {t_parallel:.2f}s, speedup {speedup:.2f}x "
          f"on {CORES} core(s)")
    if CORES >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x with {JOBS} workers on {CORES} cores, "
            f"got {speedup:.2f}x")
