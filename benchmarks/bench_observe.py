"""Observability overhead: untraced vs metered vs traced throughput.

The observability layer's contract is a near-free disabled path: the
record loops check one module global per record, and the per-field trace
hooks cost one hoisted local test each.  This bench quantifies the three
states on the Sirius record stream:

* **baseline** — no observer installed (the production default),
* **metered**  — ``observe.observed()``: counters + histograms per record,
* **traced**   — ``observe.observed(trace=True)``: per-field enter/exit
  events on the interpreter, record events on the generated engine.

Correctness is asserted inside every benchmark: enabling observation must
not change the records parsed.  Run with ``pytest benchmarks/bench_observe.py
--benchmark-only``; CI uploads the results as ``BENCH_observe.json``.
"""

import pytest

from repro import observe

from .conftest import N_RECORDS


def _drain(description, data):
    n = 0
    for _rep, _pd in description.records(data, "entry_t"):
        n += 1
    return n


@pytest.mark.benchmark(group="observe-generated")
def test_generated_baseline(benchmark, sirius_gen, sirius_body):
    assert observe.CURRENT is None
    assert benchmark(_drain, sirius_gen, sirius_body) == N_RECORDS


@pytest.mark.benchmark(group="observe-generated")
def test_generated_metered(benchmark, sirius_gen, sirius_body):
    def run():
        with observe.observed() as obs:
            n = _drain(sirius_gen, sirius_body)
        return n, obs.metrics.value("records.total")

    n, total = benchmark(run)
    assert n == N_RECORDS and total == N_RECORDS


@pytest.mark.benchmark(group="observe-generated")
def test_generated_traced(benchmark, sirius_gen, sirius_body):
    def run():
        # Bounded buffer: tracing cost, not list-growth cost.
        with observe.observed(trace=True, max_events=10_000) as obs:
            n = _drain(sirius_gen, sirius_body)
        return n, len(obs.tracer.events) + obs.tracer.dropped

    n, events = benchmark(run)
    assert n == N_RECORDS and events == N_RECORDS


@pytest.mark.benchmark(group="observe-interpreter")
def test_interpreter_baseline(benchmark, sirius_interp, sirius_body):
    assert observe.CURRENT is None
    assert benchmark(_drain, sirius_interp, sirius_body) == N_RECORDS


@pytest.mark.benchmark(group="observe-interpreter")
def test_interpreter_traced(benchmark, sirius_interp, sirius_body):
    def run():
        with observe.observed(trace=True, max_events=10_000) as obs:
            n = _drain(sirius_interp, sirius_body)
        return n, obs.tracer.dropped

    n, dropped = benchmark(run)
    assert n == N_RECORDS and dropped > 0  # per-field events overflow 10k
