"""Figure 10: the paper's performance table.

Paper setup: a 2.2GB Sirius file (11,773,843 records, 1 sort violation,
53 syntax errors), two tasks, PADS-generated C vs hand-written PERL:

======================  =======  =======  =====
task                    PADS     PERL     ratio
======================  =======  =======  =====
vetting (all checks)    ~1616s   ~3272s   ~2.0x
selection (no checks)   ~421s    ~520s    ~1.2x
record count (floor)      81s     124s    ~1.5x
======================  =======  =======  =====

This file reruns the same two tasks (plus the counting floor) over a
synthetic Sirius file with the same error mix, comparing the generated
Python parser against the transliterated hand-written Python programs
(:mod:`benchmarks.baselines`).  Correctness is asserted inside every
benchmark: both sides must find the same errors / the same order numbers.

Run ``pytest benchmarks/bench_fig10_perf.py --benchmark-only``; scale with
``PADS_BENCH_RECORDS``.
"""

import pytest

from .baselines import (
    pads_count_records,
    pads_select_sirius,
    pads_vet_sirius,
    python_count_records,
    python_select_sirius,
    python_vet_sirius,
)
from .conftest import SELECT_STATE


EXPECTED_BAD = 54  # 53 syntax errors + 1 sort violation, as in the paper


@pytest.mark.benchmark(group="fig10-vetting")
def test_vet_pads(benchmark, sirius_gen, sirius_body):
    """padsvet: full checking, including the timestamp sort order."""
    clean, errors = benchmark(pads_vet_sirius, sirius_gen, sirius_body)
    assert len(errors) == EXPECTED_BAD
    assert len(clean) + len(errors) == sirius_body.count(b"\n")


@pytest.mark.benchmark(group="fig10-vetting")
def test_vet_handwritten(benchmark, sirius_body):
    """perl vet.pl: the split-based hand-written vetter."""
    clean, errors = benchmark(python_vet_sirius, sirius_body)
    assert len(errors) == EXPECTED_BAD


@pytest.mark.benchmark(group="fig10-selection")
def test_select_pads(benchmark, sirius_gen, sirius_clean):
    """padsselect: all error checking off, emit matching order numbers."""
    result = benchmark(pads_select_sirius, sirius_gen, sirius_clean,
                       SELECT_STATE)
    expected = python_select_sirius(sirius_clean, SELECT_STATE.encode())
    assert result == expected


@pytest.mark.benchmark(group="fig10-selection")
def test_select_handwritten(benchmark, sirius_clean):
    """perl select.pl: the Figure 9 regex applied per line."""
    result = benchmark(python_select_sirius, sirius_clean,
                       SELECT_STATE.encode())
    assert len(result) > 0


@pytest.mark.benchmark(group="fig10-count")
def test_count_pads(benchmark, sirius_gen, sirius_clean):
    """The PADS record-count floor (81s in the paper)."""
    n = benchmark(pads_count_records, sirius_gen, sirius_clean)
    assert n == sirius_clean.count(b"\n")


@pytest.mark.benchmark(group="fig10-count")
def test_count_handwritten(benchmark, sirius_clean):
    """The PERL record-count floor (124s in the paper)."""
    n = benchmark(python_count_records, sirius_clean)
    assert n == sirius_clean.count(b"\n")
