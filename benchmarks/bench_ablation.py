"""Ablations over the design choices DESIGN.md calls out.

* **compile vs interpret** — the paper's Section 1: "we compile the PADS
  description rather than simply interpret it to reduce run-time
  overhead".  Four execution strategies are measured: interpreted
  combinators, generated code with the record fast path disabled,
  generated code with the fast path (the Section 9 partial-evaluation
  idea), and the AST-specializing codegen backend that constant-folds
  the fast path per description.
* **mask cost** — Section 3: masks let applications "choose which semantic
  conditions to check at run-time".  Measures full checking vs syntax-only
  vs set-only over the same data.
"""

import random

import pytest

from repro import Mask, P_CheckAndSet, P_Set, gallery
from repro.codegen import compile_generated
from repro.core.masks import MaskFlag
from repro.tools.datagen import sirius_workload

N = 5000


@pytest.fixture(scope="module")
def body():
    return sirius_workload(N, random.Random(99)).split(b"\n", 1)[1]


@pytest.fixture(scope="module")
def gen_no_fastpath():
    # Source backend: the AST backend splits each fast function into
    # mask-specialized clones, so only the source module has the
    # uniform ``_fp_*`` surface this ablation knocks out.
    gen = compile_generated(gallery.SIRIUS, backend="source")
    # Disabling the fast path: force every parse through the general body.
    module = gen.module
    for name in list(vars(module)):
        if name.startswith("_fp_"):
            setattr(module, name, lambda *_args: None)
    return gen


def _consume(description, data, mask=None):
    total = bad = 0
    for _, pd in description.records(data, "entry_t", mask):
        total += 1
        bad += 1 if pd.nerr else 0
    return total, bad


@pytest.mark.benchmark(group="ablation-execution")
def test_interpreted(benchmark, sirius_interp, body):
    total, bad = benchmark(_consume, sirius_interp, body)
    assert total == N and bad == 54


@pytest.mark.benchmark(group="ablation-execution")
def test_generated_general_only(benchmark, gen_no_fastpath, body):
    total, bad = benchmark(_consume, gen_no_fastpath, body)
    assert total == N and bad == 54


@pytest.mark.benchmark(group="ablation-execution")
def test_generated_with_fastpath(benchmark, sirius_gen, body):
    total, bad = benchmark(_consume, sirius_gen, body)
    assert total == N and bad == 54


@pytest.mark.benchmark(group="ablation-execution")
def test_generated_ast_specialized(benchmark, sirius_gen_ast, body):
    total, bad = benchmark(_consume, sirius_gen_ast, body)
    assert total == N and bad == 54


@pytest.mark.benchmark(group="ablation-masks")
def test_mask_check_and_set(benchmark, sirius_gen, body):
    total, bad = benchmark(_consume, sirius_gen, body, Mask(P_CheckAndSet))
    assert bad == 54


@pytest.mark.benchmark(group="ablation-masks")
def test_mask_syntax_only(benchmark, sirius_gen, body):
    mask = Mask(MaskFlag.SET | MaskFlag.SYN_CHECK)
    total, bad = benchmark(_consume, sirius_gen, body, mask)
    # Without semantic checks the sort violation goes unnoticed.
    assert bad == 53


@pytest.mark.benchmark(group="ablation-masks")
def test_mask_set_only(benchmark, sirius_gen, body):
    total, bad = benchmark(_consume, sirius_gen, body, Mask(P_Set))
    assert total == N
