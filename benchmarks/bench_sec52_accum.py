"""Section 5.2: the accumulator report for the CLF ``length`` field.

The paper's run over a web-traffic dataset reported 53,544 good values,
3,824 bad (6.666% — web servers storing '-' instead of a byte count), a
heavy-headed top-10 distribution, and 99.552% of values tracked.  This
bench profiles a synthetic CLF workload with the same '-' rate, asserts
the same *shape* (bad fraction, tracked fraction, error kind), prints the
report in the paper's exact layout, and benchmarks accumulator
throughput.
"""

import random

import pytest

from repro import gallery
from repro.tools.accum import accumulate_records
from repro.tools.datagen import clf_workload

N = 20000


@pytest.fixture(scope="module")
def clf_data():
    return clf_workload(N, random.Random(42), dash_rate=0.06666)


@pytest.mark.benchmark(group="sec52-accum")
def test_accumulator_program(benchmark, clf_gen, clf_data):
    acc, _, count = benchmark(accumulate_records, clf_gen, clf_data,
                              "entry_t")
    assert count == N
    length = acc.field("length").self_acc
    # The paper's discovery, in shape: ~6.666% bad, all of them INVALID_INT
    # (the '-' character where a number belongs).
    assert 5.5 < length.pcnt_bad() < 8.0
    assert set(length.err_codes) == {"INVALID_INT"}


def test_print_length_report(clf_interp, clf_data, capsys):
    acc, _, _ = accumulate_records(clf_interp, clf_data, "entry_t")
    length = acc.field("length")
    report = length.report()
    # Layout pinned to the paper's report.
    lines = report.splitlines()
    assert lines[0].startswith("<top>.length : uint32")
    assert "pcnt-bad:" in lines[2]
    assert any("SUMMING count:" in l for l in lines)
    tracked = length.self_acc.tracked_count / max(1, length.self_acc.good)
    # The paper reports 99.552% tracked: real web traffic is extremely
    # heavy-headed.  Our synthetic lengths are 40% head / 60% uniform tail,
    # so the 1000-value tracker covers far less — assert the mechanism
    # (head values tracked) rather than the paper's traffic shape.
    assert tracked > 0.3
    with capsys.disabled():
        print()
        print(report)
